//! A minimal, dependency-free, **deterministic** stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! This workspace builds in environments without network access, so the real
//! crates.io `proptest` cannot be fetched.  This vendored stub implements
//! exactly the subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros,
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive` and
//!   `boxed`,
//! * range, tuple, [`strategy::Just`], `any::<T>()` and simple
//!   character-class regex string strategies,
//! * [`collection::vec`], [`collection::btree_set`] and
//!   [`collection::btree_map`].
//!
//! Unlike the real proptest there is **no shrinking** and the generator is a
//! fixed-seed xorshift PRNG, so failures reproduce identically on every run.
//! Each `proptest!` test executes a fixed number of cases (64).

#![forbid(unsafe_code)]

/// The test-case driver: a deterministic PRNG plus the case budget.
pub mod test_runner {
    /// A tiny xorshift64* PRNG.  Deterministic by construction: every test
    /// run sees the same sequence.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// Creates a generator from a non-zero seed.
        pub fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// A value uniformly below `n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Drives the cases of one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        /// The deterministic source of randomness for this test.
        pub rng: Rng,
        /// How many cases each property is exercised with.
        pub cases: usize,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner {
                rng: Rng::new(0x9E37_79B9_7F4A_7C15),
                cases: default_cases(),
            }
        }
    }

    /// The per-test case budget: the `PROPTEST_CASES` environment variable
    /// when set (mirroring real proptest's knob — CI pins it so property
    /// jobs stay within budget), 64 otherwise.  The generator seed is fixed
    /// either way, so any budget reproduces a prefix of the same sequence.
    pub fn default_cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or(64)
    }
}

/// Strategies: first-class descriptions of how to generate values.
pub mod strategy {
    use crate::test_runner::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value` (the API-compatible core
    /// of proptest's `Strategy`, without shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps a function over generated values.
        fn prop_map<B, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> B,
        {
            Map { base: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let rc = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| rc.generate(rng)))
        }

        /// Builds a recursive strategy: `expand` turns a strategy for the
        /// inner occurrences into a strategy for the enclosing shape, nested
        /// up to `depth` levels.  (`_desired_size` and `_expected_branch`
        /// are accepted for API compatibility and ignored.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let composite = expand(current).boxed();
                current = one_of(vec![leaf, composite]);
            }
            current
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Rng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            (self.0)(rng)
        }
    }

    /// Picks uniformly among the given strategies (the engine behind
    /// [`prop_oneof!`](crate::prop_oneof) and `prop_recursive`).
    pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "one_of requires at least one strategy");
        BoxedStrategy(Rc::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        }))
    }

    /// The strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, B, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> B,
    {
        type Value = B;

        fn generate(&self, rng: &mut Rng) -> B {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut Rng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + rng.below(span) as $t
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// String strategies from a character-class regex (`&'static str`
    /// patterns such as `"[a-z][a-z0-9]{0,5}"`).  Supports literal
    /// characters, `[...]` classes with ranges, and an optional `{m,n}`
    /// repetition suffix — the subset this workspace's tests use.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut Rng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut Rng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alternatives: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut alts = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        alts.extend((lo..=hi).collect::<Vec<char>>());
                        j += 3;
                    } else {
                        alts.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alts
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m,n} repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (m, n) = match body.split_once(',') {
                    Some((m, n)) => (m, n),
                    None => (body.as_str(), body.as_str()),
                };
                i = close + 1;
                (
                    m.parse::<usize>().expect("repetition lower bound"),
                    n.parse::<usize>().expect("repetition upper bound"),
                )
            } else {
                (1, 1)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                let pick = rng.below(alternatives.len() as u64) as usize;
                out.push(alternatives[pick]);
            }
        }
        out
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut Rng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            )+
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set, btree_map}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// A strategy for `Vec`s with sizes drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A strategy for `BTreeSet`s.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::btree_set`: sets of `element` with at most
    /// `size.end - 1` entries (duplicates collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// A strategy for `BTreeMap`s.
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut Rng) -> BTreeMap<K::Value, V::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// `proptest::collection::btree_map`: maps with keys from `key`, values
    /// from `value` and entry counts in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }
}

/// The `proptest!` macro: declares property tests whose arguments are drawn
/// from strategies.
///
/// ```rust
/// use proptest::prelude::*;
///
/// proptest! {
///     // (Under `#[cfg(test)]` you would add `#[test]` here.)
///     fn addition_commutes(a in 0u8..100, b in 0u8..100) {
///         prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::default();
                let cases = runner.cases;
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner.rng);)+
                    $body
                }
            }
        )+
    };
}

/// `prop_assert!`: asserts a condition inside a property (panics on failure,
/// like `assert!` — this stub has no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!`: asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `prop_oneof!`: picks uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRunner;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::Rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn pattern_strings_match_the_class_shape() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,5}", &mut rng);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.len() <= 6);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec(0u8..4, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let m = Strategy::generate(
                &crate::collection::btree_map(0u8..4, 0u8..4, 0..3),
                &mut rng,
            );
            assert!(m.len() < 3);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u16..50, ys in crate::collection::vec(0u8..5, 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(ys.len() < 4);
            prop_assert!(ys.iter().all(|y| *y < 5));
        }
    }
}
