//! Abstract interpretation of Featherweight Java.
//!
//! The `StorePassing` instance of [`FjInterface`] is assembled from the same
//! language-independent parameters as the λ-calculi substrates: contexts for
//! call-site sensitivity, plain or counting stores, abstract garbage
//! collection and the per-state / shared-store collecting domains.  Nothing
//! in `mai-core` was written with objects in mind, yet everything applies —
//! the paper's claim that "context-sensitivity for Java and for the lambda
//! calculus is the same monad".

use std::collections::{BTreeMap, BTreeSet};

use mai_core::addr::{Context, NamedAddress};
use mai_core::collect::{run_analysis, with_gc, Collecting, PerStateDomain, SharedStoreDomain};
use mai_core::engine::{
    explore_frontier_ladder, explore_worklist_direct_stats, explore_worklist_direct_traced_stats,
    explore_worklist_elastic_stats, explore_worklist_elastic_traced_stats,
    explore_worklist_parallel_stats, explore_worklist_parallel_traced_stats,
    explore_worklist_rescan_stats, explore_worklist_stats, explore_worklist_structural_stats,
    with_state_gc, Budget, DirectCollecting, EngineError, EngineStats, FrontierCollecting,
    LadderReport, Outcome, ParallelCollecting, ParallelConfig, SharedResumeSeed, SolveFrom,
};
use mai_core::gc::{reachable, GcStrategy, Touches};
use mai_core::monad::{
    gets_nd_set, MonadFamily, MonadState, MonadTrans, StateT, StorePassing, Value, VecM,
};
use mai_core::name::{Label, Name};
use mai_core::store::{BasicStore, CountingStore, StoreLike};
use mai_core::{KCallAddr, KCallCtx, MonoAddr, MonoCtx};

use crate::machine::{kont_name, mnext, Env, FjInterface, Kont, KontKind, Obj, PState, Storable};
use crate::syntax::{ClassName, ClassTable, Program, VarName};

impl<C, S> FjInterface<C::Addr> for StorePassing<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
{
    fn lookup(env: &Env<C::Addr>, var: &VarName) -> Self::M<Obj<C::Addr>> {
        let addr = env.get(var).cloned();
        Self::lift(gets_nd_set::<StateT<S, VecM>, S, Obj<C::Addr>, _>(
            move |store| match &addr {
                Some(a) => store
                    .fetch(a)
                    .iter()
                    .filter_map(Storable::as_val)
                    .cloned()
                    .collect(),
                None => BTreeSet::new(),
            },
        ))
    }

    fn fetch(addr: &C::Addr) -> Self::M<Obj<C::Addr>> {
        let addr = addr.clone();
        Self::lift(gets_nd_set::<StateT<S, VecM>, S, Obj<C::Addr>, _>(
            move |store| {
                store
                    .fetch(&addr)
                    .iter()
                    .filter_map(Storable::as_val)
                    .cloned()
                    .collect()
            },
        ))
    }

    fn kont_at(addr: &C::Addr) -> Self::M<Kont<C::Addr>> {
        let addr = addr.clone();
        Self::lift(gets_nd_set::<StateT<S, VecM>, S, Kont<C::Addr>, _>(
            move |store| {
                store
                    .fetch(&addr)
                    .iter()
                    .filter_map(Storable::as_kont)
                    .cloned()
                    .collect()
            },
        ))
    }

    fn bind_val(addr: C::Addr, val: Obj<C::Addr>) -> Self::M<()> {
        Self::lift(<StateT<S, VecM> as MonadState<S>>::modify(move |store| {
            store.bind(
                addr.clone(),
                [Storable::Val(val.clone())].into_iter().collect(),
            )
        }))
    }

    fn bind_kont(addr: C::Addr, kont: Kont<C::Addr>) -> Self::M<()> {
        Self::lift(<StateT<S, VecM> as MonadState<S>>::modify(move |store| {
            store.bind(
                addr.clone(),
                [Storable::Kont(kont.clone())].into_iter().collect(),
            )
        }))
    }

    fn alloc(name: &Name) -> Self::M<C::Addr> {
        let name = name.clone();
        <Self as MonadState<C>>::gets(move |ctx| ctx.valloc(&name))
    }

    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<C::Addr> {
        let name = kont_name(site, kind);
        <Self as MonadState<C>>::gets(move |ctx| ctx.valloc(&name))
    }

    fn tick(site: Label) -> Self::M<()> {
        <Self as MonadState<C>>::modify(move |ctx| ctx.advance(site))
    }
}

/// The abstract garbage collector for Featherweight Java.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FjGc;

impl<C, S> GcStrategy<StorePassing<C, S>, PState<C::Addr>> for FjGc
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
{
    fn collect(&self, ps: &PState<C::Addr>) -> <StorePassing<C, S> as MonadFamily>::M<()> {
        let roots = ps.touches();
        <StorePassing<C, S> as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |store: S| {
                let live = reachable(roots.clone(), &store);
                store.filter_store(|a| live.contains(a))
            },
        ))
    }
}

/// Runs the Featherweight Java analysis with an arbitrary context, store and
/// collecting domain.
pub fn analyse<C, S, Fp>(program: &Program) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse`], with abstract garbage collection after every step.
pub fn analyse_with_gc<C, S, Fp>(program: &Program) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
            FjGc,
        ),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse`], but solved by the frontier-driven worklist engine
/// instead of naive Kleene iteration, additionally reporting
/// [`EngineStats`].  Computes exactly the same fixpoint.
pub fn analyse_worklist<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_with_gc`], but solved by the worklist engine.
pub fn analyse_with_gc_worklist<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
            FjGc,
        ),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_worklist`], but evaluated on the **direct-style step
/// carrier** ([`crate::direct::mnext_direct`]): the same FJ machine
/// semantics with `bind` as plain function composition — no `Rc<dyn Fn>`
/// per bind.  Identical fixpoint; the `Rc` carrier remains the oracle.
pub fn analyse_worklist_direct<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_direct_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
    )
}

/// [`analyse_worklist_direct`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve:
/// per-round phase timings, store-join traffic and hot-state attribution.
/// Identical fixpoint and identical deterministic work counters at every
/// sink.
pub fn analyse_worklist_direct_traced<C, S, Fp, T>(
    program: &Program,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    let table = program.table.clone();
    explore_worklist_direct_traced_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        sink,
    )
}

/// Like [`analyse_with_gc_worklist`], but on the direct-style carrier
/// (per-branch store restriction via
/// [`with_state_gc`]).
pub fn analyse_with_gc_worklist_direct<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_direct_stats(
        with_state_gc(move |ps, ctx, store| {
            crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store)
        }),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_worklist_direct`], but *governed*: the solve consults
/// `budget` at every round boundary and returns an [`Outcome`] — either
/// the complete fixpoint or an `Exhausted` partial whose resume seed
/// reaches the identical fixpoint when handed back to
/// [`analyse_resume_governed`].  With `Budget::unlimited()` the result and
/// every deterministic work counter are byte-identical to
/// [`analyse_worklist_direct`] (the ungoverned entry point *is* this one,
/// applied to the unlimited budget).
pub fn analyse_worklist_governed<C, S, Fp>(
    program: &Program,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    Fp::explore_frontier_governed(
        &move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        SolveFrom::Fresh(PState::inject(program.main.clone())),
        budget,
    )
}

/// Resumes an exhausted governed solve from its carried seed (the class
/// table must be the one the original solve ran against).  Monotone
/// accumulation guarantees the resumed solve reaches exactly the fixpoint
/// the one-shot solve would have.
pub fn analyse_resume_governed<C, S, Fp>(
    table: &ClassTable,
    seed: Fp::Seed,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    let table = table.clone();
    Fp::explore_frontier_governed(
        &move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        SolveFrom::Resume(seed),
        budget,
    )
}

/// [`analyse_worklist_parallel`], governed: budget and cancellation are
/// checked at every barrier, and a panicked worker surfaces as a clean
/// [`EngineError`] instead of deadlocking the pool.
pub fn analyse_worklist_parallel_governed<C, S, Fp>(
    program: &Program,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    Fp::explore_frontier_parallel_governed(
        &move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        SolveFrom::Fresh(PState::inject(program.main.clone())),
        threads,
        budget,
    )
}

/// [`analyse_worklist_elastic`], governed: budget and cancellation are
/// checked at every epoch boundary (cancel latency is at most one epoch).
pub fn analyse_worklist_elastic_governed<C, S, Fp>(
    program: &Program,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    Fp::explore_frontier_elastic_governed(
        &move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        SolveFrom::Fresh(PState::inject(program.main.clone())),
        config,
        budget,
    )
}

/// The outcome type of a ladder solve over the shared-store FJ domain.
pub type LadderOutcome<C, S> = Outcome<
    SharedStoreDomain<PState<<C as Context>::Addr>, C, S>,
    SharedResumeSeed<PState<<C as Context>::Addr>, C, S>,
>;

/// [`analyse_worklist_elastic`] behind the full degradation ladder:
/// elastic → barrier → sequential direct.  A faulted parallel rung is
/// reported in the [`LadderReport`]; the returned fixpoint is byte-identical
/// to [`analyse_worklist_direct`] no matter which rung completed.
pub fn analyse_worklist_ladder<C, S>(
    program: &Program,
    config: ParallelConfig,
    budget: &Budget,
) -> (LadderOutcome<C, S>, EngineStats, LadderReport)
where
    C: Context + std::hash::Hash,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>
        + mai_core::store::StoreDelta<C::Addr>
        + mai_core::lattice::WidenLattice
        + Value,
{
    let table = program.table.clone();
    explore_frontier_ladder(
        &move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        config,
        budget,
    )
}

/// Like [`analyse_worklist_direct`], but solved by the **sharded parallel
/// driver** ([`mai_core::engine::parallel`]) on `threads` worker threads:
/// the frontier is sharded across workers (work-stealing by `StateId`
/// ranges), each worker steps against a snapshot of the global store —
/// sharing one class table — and per-shard deltas are joined at a sync
/// barrier each round.  Byte-identical fixpoint — and identical
/// deterministic work counters — to [`analyse_worklist_direct`] at every
/// thread count; the sequential direct engine remains the determinism
/// oracle.
pub fn analyse_worklist_parallel<C, S, Fp>(program: &Program, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_parallel_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        threads,
    )
}

/// [`analyse_worklist_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve:
/// per-round phase timings plus one
/// [`WorkerSpan`](mai_core::telemetry::WorkerSpan) per worker per round
/// and a [`StealTrace`](mai_core::telemetry::StealTrace) per stolen chunk.
pub fn analyse_worklist_parallel_traced<C, S, Fp, T>(
    program: &Program,
    threads: usize,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    let table = program.table.clone();
    explore_worklist_parallel_traced_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        threads,
        sink,
    )
}

/// Like [`analyse_with_gc_worklist_direct`], but solved by the sharded
/// parallel driver (abstract GC as the per-branch [`with_state_gc`] store
/// restriction, inside each worker).
pub fn analyse_with_gc_parallel<C, S, Fp>(program: &Program, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_parallel_stats(
        with_state_gc(move |ps, ctx, store| {
            crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store)
        }),
        PState::inject(program.main.clone()),
        threads,
    )
}

/// Like [`analyse_worklist_parallel`], but solved by the **barrier-elastic
/// driver** ([`mai_core::engine::parallel::elastic`]): workers advance
/// private sub-frontiers for up to [`ParallelConfig::epochs`] epochs
/// between barriers, merging per-shard store deltas lazily.  The fixpoint
/// stays byte-identical to [`analyse_worklist_direct`]; the *work
/// counters* become timing-dependent (`epochs = 1` delegates to the
/// barrier engine, deterministic counters and all).
pub fn analyse_worklist_elastic<C, S, Fp>(
    program: &Program,
    config: ParallelConfig,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_elastic_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        config,
    )
}

/// [`analyse_worklist_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker, per-epoch and per-merge profiles).
pub fn analyse_worklist_elastic_traced<C, S, Fp, T>(
    program: &Program,
    config: ParallelConfig,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    let table = program.table.clone();
    explore_worklist_elastic_traced_stats(
        move |ps, ctx, store| crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store),
        PState::inject(program.main.clone()),
        config,
        sink,
    )
}

/// Like [`analyse_with_gc_parallel`], but on the barrier-elastic driver.
pub fn analyse_with_gc_elastic<C, S, Fp>(
    program: &Program,
    config: ParallelConfig,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    let table = program.table.clone();
    explore_worklist_elastic_stats(
        with_state_gc(move |ps, ctx, store| {
            crate::direct::mnext_direct::<C, S>(&table, ps, ctx, store)
        }),
        PState::inject(program.main.clone()),
        config,
    )
}

/// Like [`analyse_worklist`], but solved by the PR-2 *structural-key*
/// incremental engine (states as `BTreeMap` keys instead of interned ids) —
/// a differential-testing oracle and the E10 benchmark baseline.
pub fn analyse_worklist_structural<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_with_gc_worklist`], but solved by the structural-key
/// engine.
pub fn analyse_with_gc_worklist_structural<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
            FjGc,
        ),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_worklist`], but solved by the PR-1 *rescanning* worklist
/// engine (full contribution re-join per round) — the differential-testing
/// oracle and E9 benchmark baseline.
pub fn analyse_worklist_rescan<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
        PState::inject(program.main.clone()),
    )
}

/// Like [`analyse_with_gc_worklist`], but solved by the rescanning engine.
pub fn analyse_with_gc_worklist_rescan<C, S, Fp>(program: &Program) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    let table = program.table.clone();
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            move |ps| mnext::<StorePassing<C, S>, C::Addr>(&table, ps),
            FjGc,
        ),
        PState::inject(program.main.clone()),
    )
}

/// The plain store of the call-site-sensitive FJ analyses.
pub type KFjStore = BasicStore<KCallAddr, Storable<KCallAddr>>;

/// The counting store of the call-site-sensitive FJ analyses.
pub type KFjCountingStore = CountingStore<KCallAddr, Storable<KCallAddr>>;

/// Shared-store k-call-site-sensitive FJ analysis domain.
pub type KFjShared<const K: usize> = SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KFjStore>;

/// Per-state-store k-call-site-sensitive FJ analysis domain.
pub type KFjPerState<const K: usize> = PerStateDomain<PState<KCallAddr>, KCallCtx<K>, KFjStore>;

/// Shared-store monovariant FJ analysis domain.
pub type MonoFjShared =
    SharedStoreDomain<PState<MonoAddr>, MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>>;

/// k-call-site-sensitive analysis with a shared (widened) store.
pub fn analyse_kcfa_shared<const K: usize>(program: &Program) -> KFjShared<K> {
    analyse::<KCallCtx<K>, KFjStore, _>(program)
}

/// k-call-site-sensitive analysis with per-state stores (heap cloning).
pub fn analyse_kcfa<const K: usize>(program: &Program) -> KFjPerState<K> {
    analyse::<KCallCtx<K>, KFjStore, _>(program)
}

/// k-call-site-sensitive analysis with a shared counting store.
pub fn analyse_kcfa_with_count<const K: usize>(
    program: &Program,
) -> SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KFjCountingStore> {
    analyse::<KCallCtx<K>, KFjCountingStore, _>(program)
}

/// k-call-site-sensitive analysis with a shared store and abstract GC.
pub fn analyse_kcfa_shared_gc<const K: usize>(program: &Program) -> KFjShared<K> {
    analyse_with_gc::<KCallCtx<K>, KFjStore, _>(program)
}

/// Monovariant (context-insensitive) analysis with a shared store.
pub fn analyse_mono(program: &Program) -> MonoFjShared {
    analyse::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the worklist engine.
pub fn analyse_kcfa_shared_worklist<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the PR-1 rescanning worklist engine.
pub fn analyse_kcfa_shared_rescan<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist_rescan::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the PR-2 structural-key incremental
/// engine — the E10 benchmark baseline.
pub fn analyse_kcfa_shared_structural<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist_structural::<KCallCtx<K>, KFjStore, _>(program)
}

/// How many distinct environments the states of a shared-store FJ fixpoint
/// carry, measured with an [`EnvId`](mai_core::intern::EnvId) interner —
/// the language-boundary half of [`EngineStats::distinct_envs`].
pub fn distinct_env_count<A, G, S>(result: &SharedStoreDomain<PState<A>, G, S>) -> usize
where
    A: mai_core::addr::Address + std::hash::Hash,
    G: Ord + Clone,
    S: mai_core::lattice::Lattice,
{
    mai_core::intern::distinct_count(result.states().iter().map(|(ps, _)| ps.env.clone()))
}

/// [`analyse_kcfa`] solved by the worklist engine (per-state stores).
pub fn analyse_kcfa_worklist<const K: usize>(program: &Program) -> (KFjPerState<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_with_count`] solved by the worklist engine.
pub fn analyse_kcfa_with_count_worklist<const K: usize>(
    program: &Program,
) -> (
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KFjCountingStore>,
    EngineStats,
) {
    analyse_worklist::<KCallCtx<K>, KFjCountingStore, _>(program)
}

/// [`analyse_kcfa_shared_gc`] solved by the worklist engine.
pub fn analyse_kcfa_shared_gc_worklist<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_with_gc_worklist::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_shared_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_shared_direct<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist_direct::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_shared_direct`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve.
pub fn analyse_kcfa_shared_direct_traced<const K: usize, T>(
    program: &Program,
    sink: &mut T,
) -> (KFjShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_direct_traced::<KCallCtx<K>, KFjStore, _, T>(program, sink)
}

/// [`analyse_kcfa_shared_gc_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_shared_gc_direct<const K: usize>(
    program: &Program,
) -> (KFjShared<K>, EngineStats) {
    analyse_with_gc_worklist_direct::<KCallCtx<K>, KFjStore, _>(program)
}

/// [`analyse_kcfa_with_count_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_with_count_direct<const K: usize>(
    program: &Program,
) -> (
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KFjCountingStore>,
    EngineStats,
) {
    analyse_worklist_direct::<KCallCtx<K>, KFjCountingStore, _>(program)
}

/// [`analyse_mono_worklist`] on the direct-style carrier.
pub fn analyse_mono_direct(program: &Program) -> (MonoFjShared, EngineStats) {
    analyse_worklist_direct::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(program)
}

/// [`analyse_kcfa_shared_direct`] solved by the sharded parallel driver.
pub fn analyse_kcfa_shared_parallel<const K: usize>(
    program: &Program,
    threads: usize,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist_parallel::<KCallCtx<K>, KFjStore, _>(program, threads)
}

/// [`analyse_kcfa_shared_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker profiles).
pub fn analyse_kcfa_shared_parallel_traced<const K: usize, T>(
    program: &Program,
    threads: usize,
    sink: &mut T,
) -> (KFjShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_parallel_traced::<KCallCtx<K>, KFjStore, _, T>(program, threads, sink)
}

/// [`analyse_mono_direct`] solved by the sharded parallel driver.
pub fn analyse_mono_parallel(program: &Program, threads: usize) -> (MonoFjShared, EngineStats) {
    analyse_worklist_parallel::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(
        program, threads,
    )
}

/// [`analyse_kcfa_shared_direct`] solved by the barrier-elastic driver.
pub fn analyse_kcfa_shared_elastic<const K: usize>(
    program: &Program,
    config: ParallelConfig,
) -> (KFjShared<K>, EngineStats) {
    analyse_worklist_elastic::<KCallCtx<K>, KFjStore, _>(program, config)
}

/// [`analyse_kcfa_shared_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve.
pub fn analyse_kcfa_shared_elastic_traced<const K: usize, T>(
    program: &Program,
    config: ParallelConfig,
    sink: &mut T,
) -> (KFjShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_elastic_traced::<KCallCtx<K>, KFjStore, _, T>(program, config, sink)
}

/// [`analyse_kcfa_shared_gc_direct`] solved by the barrier-elastic driver.
pub fn analyse_kcfa_shared_gc_elastic<const K: usize>(
    program: &Program,
    config: ParallelConfig,
) -> (KFjShared<K>, EngineStats) {
    analyse_with_gc_elastic::<KCallCtx<K>, KFjStore, _>(program, config)
}

/// [`analyse_mono_direct`] solved by the barrier-elastic driver.
pub fn analyse_mono_elastic(
    program: &Program,
    config: ParallelConfig,
) -> (MonoFjShared, EngineStats) {
    analyse_worklist_elastic::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(
        program, config,
    )
}

/// [`analyse_mono`] solved by the worklist engine.
pub fn analyse_mono_worklist(program: &Program) -> (MonoFjShared, EngineStats) {
    analyse_worklist::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(program)
}

/// The resume seed of a governed shared-store k-CFA solve.
pub type KFjSeed<const K: usize> = SharedResumeSeed<PState<KCallAddr>, KCallCtx<K>, KFjStore>;

/// [`analyse_kcfa_shared_direct`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_governed<const K: usize>(
    program: &Program,
    budget: &Budget,
) -> (Outcome<KFjShared<K>, KFjSeed<K>>, EngineStats) {
    analyse_worklist_governed::<KCallCtx<K>, KFjStore, _>(program, budget)
}

/// Resumes an exhausted [`analyse_kcfa_shared_governed`] solve.
pub fn analyse_kcfa_shared_resume<const K: usize>(
    table: &ClassTable,
    seed: KFjSeed<K>,
    budget: &Budget,
) -> (Outcome<KFjShared<K>, KFjSeed<K>>, EngineStats) {
    analyse_resume_governed::<KCallCtx<K>, KFjStore, _>(table, seed, budget)
}

/// [`analyse_kcfa_shared_parallel`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_parallel_governed<const K: usize>(
    program: &Program,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<KFjShared<K>, KFjSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_parallel_governed::<KCallCtx<K>, KFjStore, _>(program, threads, budget)
}

/// [`analyse_kcfa_shared_elastic`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_elastic_governed<const K: usize>(
    program: &Program,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<KFjShared<K>, KFjSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_elastic_governed::<KCallCtx<K>, KFjStore, _>(program, config, budget)
}

/// [`analyse_kcfa_shared_elastic`] behind the degradation ladder
/// (elastic → barrier → sequential direct).
pub fn analyse_kcfa_shared_ladder<const K: usize>(
    program: &Program,
    config: ParallelConfig,
    budget: &Budget,
) -> (Outcome<KFjShared<K>, KFjSeed<K>>, EngineStats, LadderReport) {
    analyse_worklist_ladder::<KCallCtx<K>, KFjStore>(program, config, budget)
}

/// Which classes may flow to each variable or field cell, extracted from an
/// FJ store (continuation entries are ignored).  This is the standard
/// "points-to / class analysis" view of the result.
pub fn class_flow_map<A, S>(store: &S) -> BTreeMap<Name, BTreeSet<ClassName>>
where
    A: NamedAddress,
    S: StoreLike<A, D = BTreeSet<Storable<A>>>,
{
    let mut flows: BTreeMap<Name, BTreeSet<ClassName>> = BTreeMap::new();
    for addr in store.addresses() {
        for storable in store.fetch(&addr) {
            if let Storable::Val(obj) = storable {
                flows
                    .entry(addr.variable().clone())
                    .or_default()
                    .insert(obj.class.clone());
            }
        }
    }
    flows
}

/// The set of dynamic classes the program's `main` expression may evaluate
/// to, according to a shared-store analysis result.
pub fn result_classes<Ps, C, S>(result: &SharedStoreDomain<Ps, C, S>) -> BTreeSet<ClassName>
where
    Ps: Ord + Clone + ResultClass,
    C: Ord + Clone,
    S: mai_core::Lattice,
{
    result
        .distinct_states()
        .iter()
        .filter_map(ResultClass::result_class)
        .collect()
}

/// The set of abstract error messages among the reachable states — the
/// observable output of the abstract error layer.  Stuck states are final
/// for [`mnext`] (they self-loop), so the fixpoint's power-set of reachable
/// states collects every way the program may go wrong (failed casts,
/// unknown classes, arity mismatches, unbound variables).
pub fn abstract_errors<'a, A, I>(states: I) -> BTreeSet<String>
where
    A: 'a,
    I: IntoIterator<Item = &'a PState<A>>,
{
    states
        .into_iter()
        .filter_map(|ps| ps.error().map(str::to_owned))
        .collect()
}

/// States that may report the class of their halt value.
pub trait ResultClass {
    /// The dynamic class of the halt value, if this state is a halt state.
    fn result_class(&self) -> Option<ClassName>;
}

impl<A> ResultClass for PState<A> {
    fn result_class(&self) -> Option<ClassName> {
        self.result().map(|obj| obj.class.clone())
    }
}

/// A typed façade bundling a program with the analyses most examples need.
#[derive(Debug, Clone)]
pub struct FjAnalyser {
    program: Program,
}

impl FjAnalyser {
    /// Creates an analyser for a (well-formed) program.
    pub fn new(program: Program) -> Self {
        FjAnalyser { program }
    }

    /// The underlying class table.
    pub fn table(&self) -> &ClassTable {
        &self.program.table
    }

    /// Monovariant class analysis of the program: variable/field → classes.
    pub fn mono_class_flows(&self) -> BTreeMap<Name, BTreeSet<ClassName>> {
        class_flow_map(analyse_mono(&self.program).store())
    }

    /// The classes the program may evaluate to under 1-call-site
    /// sensitivity.
    pub fn result_classes_1cfa(&self) -> BTreeSet<ClassName> {
        result_classes(&analyse_kcfa_shared::<1>(&self.program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn pair_program_halts_under_every_analysis() {
        let program = programs::pair_fst();
        assert!(analyse_mono(&program)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_shared::<1>(&program)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_with_count::<1>(&program)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_shared_gc::<1>(&program)
            .distinct_states()
            .iter()
            .any(PState::is_final));
    }

    #[test]
    fn pair_fst_returns_exactly_class_a() {
        let program = programs::pair_fst();
        let shared = analyse_kcfa_shared::<1>(&program);
        assert_eq!(
            result_classes(&shared),
            [Name::from("A")].into_iter().collect()
        );
    }

    #[test]
    fn monovariant_container_analysis_conflates_two_cells() {
        let program = programs::two_cells();
        let mono = analyse_mono(&program);
        let flows = class_flow_map(mono.store());
        // Under the monovariant analysis the single abstract cell for the
        // field `Cell.content` receives both A and B.
        let cell = flows
            .iter()
            .find(|(name, _)| name.as_str() == "Cell.content")
            .map(|(_, classes)| classes.clone())
            .unwrap_or_default();
        assert!(cell.contains(&Name::from("A")));
        assert!(cell.contains(&Name::from("B")));
    }

    #[test]
    fn one_cfa_separates_the_two_cells_results() {
        let program = programs::two_cells();
        // The program's result is the content of the *first* cell, so a
        // 1-call-site-sensitive analysis should (at least) include A; the
        // monovariant one necessarily also reports B.
        let mono_result = result_classes(&analyse_mono(&program));
        let one_result = result_classes(&analyse_kcfa_shared::<1>(&program));
        assert!(mono_result.contains(&Name::from("A")));
        assert!(mono_result.contains(&Name::from("B")));
        assert!(one_result.contains(&Name::from("A")));
        assert!(one_result.len() <= mono_result.len());
    }

    #[test]
    fn gc_only_shrinks_the_store() {
        let program = programs::two_cells();
        let plain = analyse_kcfa_shared::<0>(&program);
        let gced = analyse_kcfa_shared_gc::<0>(&program);
        assert!(gced.store().fact_count() <= plain.store().fact_count());
        assert!(gced.distinct_states().iter().any(PState::is_final));
    }

    #[test]
    fn failed_downcasts_lead_to_stuck_not_halt() {
        let program = programs::bad_downcast();
        let result = analyse_mono(&program);
        assert!(result.distinct_states().iter().any(PState::is_stuck));
        assert!(!result.distinct_states().iter().any(PState::is_final));
    }

    #[test]
    fn stuck_states_surface_as_abstract_errors() {
        // A failed downcast is an observable analysis fact.
        let result = analyse_mono(&programs::bad_downcast());
        let errors = abstract_errors(result.distinct_states().iter());
        assert!(
            errors.iter().any(|m| m.contains("failed cast")),
            "unexpected error set: {errors:?}"
        );

        // An unbound variable errors through the pure env-miss check.
        let open = Program {
            table: programs::bad_downcast().table,
            main: crate::syntax::Expr::var("free"),
        };
        let result = analyse_mono(&open);
        let errors = abstract_errors(result.distinct_states().iter());
        assert!(
            errors.iter().any(|m| m.contains("unbound variable `free`")),
            "unexpected error set: {errors:?}"
        );
        assert!(!result.distinct_states().iter().any(PState::is_final));

        // A well-behaved program reports no errors.
        let result = analyse_mono(&programs::pair_fst());
        assert!(abstract_errors(result.distinct_states().iter()).is_empty());
    }

    #[test]
    fn analyser_facade_reports_flows_and_results() {
        let analyser = FjAnalyser::new(programs::pair_fst());
        let flows = analyser.mono_class_flows();
        assert!(!flows.is_empty());
        assert_eq!(
            analyser.result_classes_1cfa(),
            [Name::from("A")].into_iter().collect()
        );
        assert!(analyser.table().class(&Name::from("Pair")).is_some());
    }
}
