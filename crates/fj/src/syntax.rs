//! Syntax and class tables for Featherweight Java (Igarashi, Pierce &
//! Wadler), the third calculus the paper's implementation covers.
//!
//! Featherweight Java strips Java down to classes with fields, methods,
//! object construction, field access, method invocation and casts — just
//! enough to exercise an object-oriented semantics.  As with the other
//! substrates, every expression that constitutes a program point (method
//! calls, constructions, field accesses, casts) carries a [`Label`] so the
//! language-independent context machinery applies unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use mai_core::name::{Label, LabelSupply, Name};

/// A class name.
pub type ClassName = Name;

/// A field name.
pub type FieldName = Name;

/// A method name.
pub type MethodName = Name;

/// A variable name (`this` included).
pub type VarName = Name;

/// The distinguished root class.
pub fn object_class() -> ClassName {
    Name::from("Object")
}

/// The distinguished receiver variable.
pub fn this_var() -> VarName {
    Name::from("this")
}

/// A Featherweight Java expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A variable reference (`x` or `this`).
    Var(VarName),
    /// A field access `e.f`.
    FieldAccess {
        /// The program-point label.
        label: Label,
        /// The receiver expression.
        object: Arc<Expr>,
        /// The accessed field.
        field: FieldName,
    },
    /// A method invocation `e.m(ē)`.
    MethodCall {
        /// The program-point label.
        label: Label,
        /// The receiver expression.
        object: Arc<Expr>,
        /// The invoked method.
        method: MethodName,
        /// The argument expressions.
        args: Vec<Expr>,
    },
    /// An object construction `new C(ē)`.
    New {
        /// The program-point label.
        label: Label,
        /// The constructed class.
        class: ClassName,
        /// The constructor arguments, one per field of `C` (inherited
        /// fields first).
        args: Vec<Expr>,
    },
    /// A cast `(C) e`.
    Cast {
        /// The program-point label.
        label: Label,
        /// The target class.
        class: ClassName,
        /// The cast expression.
        object: Arc<Expr>,
    },
}

impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<Name>) -> Self {
        Expr::Var(name.into())
    }

    /// The free variables of this expression.
    pub fn free_vars(&self) -> BTreeSet<VarName> {
        match self {
            Expr::Var(v) => [v.clone()].into_iter().collect(),
            Expr::FieldAccess { object, .. } => object.free_vars(),
            Expr::MethodCall { object, args, .. } => {
                let mut out = object.free_vars();
                for a in args {
                    out.extend(a.free_vars());
                }
                out
            }
            Expr::New { args, .. } => args.iter().flat_map(Expr::free_vars).collect(),
            Expr::Cast { object, .. } => object.free_vars(),
        }
    }

    /// All labels occurring in this expression.
    pub fn labels(&self) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut BTreeSet<Label>) {
        match self {
            Expr::Var(_) => {}
            Expr::FieldAccess { label, object, .. } => {
                out.insert(*label);
                object.collect_labels(out);
            }
            Expr::MethodCall {
                label,
                object,
                args,
                ..
            } => {
                out.insert(*label);
                object.collect_labels(out);
                for a in args {
                    a.collect_labels(out);
                }
            }
            Expr::New { label, args, .. } => {
                out.insert(*label);
                for a in args {
                    a.collect_labels(out);
                }
            }
            Expr::Cast { label, object, .. } => {
                out.insert(*label);
                object.collect_labels(out);
            }
        }
    }

    /// The number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) => 1,
            Expr::FieldAccess { object, .. } => 1 + object.size(),
            Expr::MethodCall { object, args, .. } => {
                1 + object.size() + args.iter().map(Expr::size).sum::<usize>()
            }
            Expr::New { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Cast { object, .. } => 1 + object.size(),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{}", v),
            Expr::FieldAccess { object, field, .. } => write!(f, "{}.{}", object, field),
            Expr::MethodCall {
                object,
                method,
                args,
                ..
            } => {
                write!(f, "{}.{}(", object, method)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                write!(f, ")")
            }
            Expr::New { class, args, .. } => {
                write!(f, "new {}(", class)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                write!(f, ")")
            }
            Expr::Cast { class, object, .. } => write!(f, "(({}) {})", class, object),
        }
    }
}

/// A method declaration `C m(C̄ x̄) { return e; }`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodDecl {
    /// The declared return type.
    pub return_type: ClassName,
    /// The method name.
    pub name: MethodName,
    /// The parameters: `(type, name)` pairs.
    pub params: Vec<(ClassName, VarName)>,
    /// The body (the expression after `return`).
    pub body: Expr,
}

/// A class declaration `class C extends D { C̄ f̄; M̄ }`.
///
/// The canonical Featherweight Java constructor (which merely assigns every
/// field) is implied rather than written out; `new C(ē)` initialises the
/// inherited fields first and the locally declared fields after, in
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassDecl {
    /// The class name.
    pub name: ClassName,
    /// The superclass name (`Object` for roots).
    pub superclass: ClassName,
    /// The fields declared *in this class*: `(type, name)` pairs.
    pub fields: Vec<(ClassName, FieldName)>,
    /// The methods declared in this class.
    pub methods: Vec<MethodDecl>,
}

/// Errors raised while resolving names against a class table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The named class is not declared (and is not `Object`).
    UnknownClass(ClassName),
    /// The class hierarchy contains a cycle through this class.
    CyclicHierarchy(ClassName),
    /// The named field is not present on the class.
    UnknownField(ClassName, FieldName),
    /// The named method is not present on the class or its ancestors.
    UnknownMethod(ClassName, MethodName),
    /// A class was declared more than once.
    DuplicateClass(ClassName),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownClass(c) => write!(f, "unknown class {}", c),
            TableError::CyclicHierarchy(c) => write!(f, "cyclic class hierarchy through {}", c),
            TableError::UnknownField(c, x) => write!(f, "class {} has no field {}", c, x),
            TableError::UnknownMethod(c, m) => write!(f, "class {} has no method {}", c, m),
            TableError::DuplicateClass(c) => write!(f, "class {} declared twice", c),
        }
    }
}

impl std::error::Error for TableError {}

/// A class table: the collection of class declarations a program runs
/// against, with the usual Featherweight Java lookup functions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassTable {
    classes: BTreeMap<ClassName, ClassDecl>,
}

impl ClassTable {
    /// Builds a class table, rejecting duplicate declarations and
    /// declarations of `Object`.
    pub fn new(decls: Vec<ClassDecl>) -> Result<Self, TableError> {
        let mut classes = BTreeMap::new();
        for decl in decls {
            if decl.name == object_class() {
                return Err(TableError::DuplicateClass(decl.name));
            }
            if classes.insert(decl.name.clone(), decl.clone()).is_some() {
                return Err(TableError::DuplicateClass(decl.name));
            }
        }
        Ok(ClassTable { classes })
    }

    /// The declaration of a class, if any.
    pub fn class(&self, name: &ClassName) -> Option<&ClassDecl> {
        self.classes.get(name)
    }

    /// All declared classes (not including `Object`).
    pub fn classes(&self) -> impl Iterator<Item = &ClassDecl> {
        self.classes.values()
    }

    /// The superclass chain of `name`, starting with `name` itself and
    /// ending with `Object`.
    ///
    /// # Errors
    ///
    /// Fails on unknown classes and cyclic hierarchies.
    pub fn ancestry(&self, name: &ClassName) -> Result<Vec<ClassName>, TableError> {
        let mut chain = Vec::new();
        let mut seen = BTreeSet::new();
        let mut current = name.clone();
        loop {
            if current == object_class() {
                chain.push(current);
                return Ok(chain);
            }
            if !seen.insert(current.clone()) {
                return Err(TableError::CyclicHierarchy(current));
            }
            let decl = self
                .classes
                .get(&current)
                .ok_or_else(|| TableError::UnknownClass(current.clone()))?;
            chain.push(current);
            current = decl.superclass.clone();
        }
    }

    /// Whether `sub` is a subtype of `sup` (reflexive, transitive).
    pub fn is_subtype(&self, sub: &ClassName, sup: &ClassName) -> Result<bool, TableError> {
        Ok(self.ancestry(sub)?.contains(sup))
    }

    /// The fields of a class, inherited fields first (the paper's
    /// *fields(C)*).
    pub fn fields(&self, name: &ClassName) -> Result<Vec<(ClassName, FieldName)>, TableError> {
        let mut chain = self.ancestry(name)?;
        chain.reverse(); // Object … name
        let mut fields = Vec::new();
        for class in chain {
            if let Some(decl) = self.classes.get(&class) {
                fields.extend(decl.fields.iter().cloned());
            }
        }
        Ok(fields)
    }

    /// The index of a field in the canonical field order of `class`.
    pub fn field_index(&self, class: &ClassName, field: &FieldName) -> Result<usize, TableError> {
        self.fields(class)?
            .iter()
            .position(|(_, f)| f == field)
            .ok_or_else(|| TableError::UnknownField(class.clone(), field.clone()))
    }

    /// The method body *mbody(m, C)*: the defining class, parameters and
    /// body of the most-derived definition of `m` visible from `C`.
    pub fn mbody(
        &self,
        method: &MethodName,
        class: &ClassName,
    ) -> Result<(ClassName, MethodDecl), TableError> {
        for ancestor in self.ancestry(class)? {
            if let Some(decl) = self.classes.get(&ancestor) {
                if let Some(m) = decl.methods.iter().find(|m| &m.name == method) {
                    return Ok((ancestor, m.clone()));
                }
            }
        }
        Err(TableError::UnknownMethod(class.clone(), method.clone()))
    }

    /// The method type *mtype(m, C)*: parameter types and return type.
    pub fn mtype(
        &self,
        method: &MethodName,
        class: &ClassName,
    ) -> Result<(Vec<ClassName>, ClassName), TableError> {
        let (_, decl) = self.mbody(method, class)?;
        Ok((
            decl.params.iter().map(|(t, _)| t.clone()).collect(),
            decl.return_type,
        ))
    }
}

/// A whole Featherweight Java program: a class table plus the `main`
/// expression evaluated in the empty environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The class table.
    pub table: ClassTable,
    /// The expression to evaluate.
    pub main: Expr,
}

/// A builder that assigns fresh labels to program points, for constructing
/// FJ programs programmatically.
#[derive(Debug, Default)]
pub struct ExprBuilder {
    labels: LabelSupply,
}

impl ExprBuilder {
    /// Creates a fresh builder.
    pub fn new() -> Self {
        ExprBuilder {
            labels: LabelSupply::new(),
        }
    }

    /// A field access with a fresh label.
    pub fn field(&mut self, object: Expr, field: &str) -> Expr {
        Expr::FieldAccess {
            label: self.labels.fresh(),
            object: Arc::new(object),
            field: Name::from(field),
        }
    }

    /// A method call with a fresh label.
    pub fn call(&mut self, object: Expr, method: &str, args: Vec<Expr>) -> Expr {
        Expr::MethodCall {
            label: self.labels.fresh(),
            object: Arc::new(object),
            method: Name::from(method),
            args,
        }
    }

    /// An object construction with a fresh label.
    pub fn new_object(&mut self, class: &str, args: Vec<Expr>) -> Expr {
        Expr::New {
            label: self.labels.fresh(),
            class: Name::from(class),
            args,
        }
    }

    /// A cast with a fresh label.
    pub fn cast(&mut self, class: &str, object: Expr) -> Expr {
        Expr::Cast {
            label: self.labels.fresh(),
            class: Name::from(class),
            object: Arc::new(object),
        }
    }
}

/// A convenience builder for method declarations.
pub fn method(return_type: &str, name: &str, params: &[(&str, &str)], body: Expr) -> MethodDecl {
    MethodDecl {
        return_type: Name::from(return_type),
        name: Name::from(name),
        params: params
            .iter()
            .map(|(t, n)| (Name::from(*t), Name::from(*n)))
            .collect(),
        body,
    }
}

/// A convenience builder for class declarations.
pub fn class(
    name: &str,
    superclass: &str,
    fields: &[(&str, &str)],
    methods: Vec<MethodDecl>,
) -> ClassDecl {
    ClassDecl {
        name: Name::from(name),
        superclass: Name::from(superclass),
        fields: fields
            .iter()
            .map(|(t, f)| (Name::from(*t), Name::from(*f)))
            .collect(),
        methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_table() -> ClassTable {
        let mut b = ExprBuilder::new();
        let get_fst = method("Object", "fst", &[], b.field(Expr::var("this"), "first"));
        let get_snd = method("Object", "snd", &[], b.field(Expr::var("this"), "second"));
        ClassTable::new(vec![
            class("A", "Object", &[], vec![]),
            class("B", "A", &[("Object", "extra")], vec![]),
            class(
                "Pair",
                "Object",
                &[("Object", "first"), ("Object", "second")],
                vec![get_fst, get_snd],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn ancestry_and_subtyping() {
        let t = pair_table();
        assert_eq!(
            t.ancestry(&Name::from("B")).unwrap(),
            vec![Name::from("B"), Name::from("A"), object_class()]
        );
        assert!(t.is_subtype(&Name::from("B"), &Name::from("A")).unwrap());
        assert!(t.is_subtype(&Name::from("B"), &object_class()).unwrap());
        assert!(!t.is_subtype(&Name::from("A"), &Name::from("B")).unwrap());
        assert!(t.is_subtype(&Name::from("A"), &Name::from("A")).unwrap());
    }

    #[test]
    fn fields_include_inherited_ones_first() {
        let t = pair_table();
        assert_eq!(
            t.fields(&Name::from("B")).unwrap(),
            vec![(Name::from("Object"), Name::from("extra"))]
        );
        assert_eq!(t.fields(&object_class()).unwrap(), vec![]);
        assert_eq!(
            t.field_index(&Name::from("Pair"), &Name::from("second"))
                .unwrap(),
            1
        );
    }

    #[test]
    fn method_lookup_walks_the_hierarchy() {
        let t = pair_table();
        let (owner, decl) = t.mbody(&Name::from("fst"), &Name::from("Pair")).unwrap();
        assert_eq!(owner, Name::from("Pair"));
        assert_eq!(decl.return_type, Name::from("Object"));
        assert!(matches!(
            t.mbody(&Name::from("nope"), &Name::from("Pair")),
            Err(TableError::UnknownMethod(_, _))
        ));
        let (params, ret) = t.mtype(&Name::from("snd"), &Name::from("Pair")).unwrap();
        assert!(params.is_empty());
        assert_eq!(ret, Name::from("Object"));
    }

    #[test]
    fn errors_are_reported_for_bad_tables() {
        assert!(matches!(
            ClassTable::new(vec![
                class("A", "Object", &[], vec![]),
                class("A", "Object", &[], vec![]),
            ]),
            Err(TableError::DuplicateClass(_))
        ));
        let cyclic = ClassTable::new(vec![
            class("A", "B", &[], vec![]),
            class("B", "A", &[], vec![]),
        ])
        .unwrap();
        assert!(matches!(
            cyclic.ancestry(&Name::from("A")),
            Err(TableError::CyclicHierarchy(_))
        ));
        let t = pair_table();
        assert!(matches!(
            t.ancestry(&Name::from("Missing")),
            Err(TableError::UnknownClass(_))
        ));
        assert!(matches!(
            t.field_index(&Name::from("A"), &Name::from("x")),
            Err(TableError::UnknownField(_, _))
        ));
    }

    #[test]
    fn expressions_render_and_measure() {
        let mut b = ExprBuilder::new();
        let pair = b.new_object("Pair", vec![Expr::var("x"), Expr::var("y")]);
        let e = b.call(pair, "fst", vec![]);
        assert_eq!(e.to_string(), "new Pair(x, y).fst()");
        assert_eq!(e.free_vars().len(), 2);
        assert_eq!(e.labels().len(), 2);
        assert!(e.size() >= 4);
        let cast = b.cast("A", Expr::var("z"));
        assert_eq!(cast.to_string(), "((A) z)");
    }
}
