//! The monadic abstract machine for Featherweight Java.
//!
//! Objects are allocated in the store (one address per field), and method
//! calls, constructions, field accesses and casts are sequenced with
//! store-allocated continuation frames — the same "abstracting abstract
//! machines" recipe used for the λ-calculi, expressed once against the
//! semantic interface [`FjInterface`] so that the monad (and with it every
//! analysis parameter) stays exchangeable.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mai_core::addr::Address;
use mai_core::engine::StateRoots;
use mai_core::env::CowMap;
use mai_core::gc::Touches;
use mai_core::monad::{map_m, MonadFamily};
use mai_core::name::{Label, Name};

use crate::syntax::{this_var, ClassName, ClassTable, Expr, FieldName, MethodName, VarName};

/// An environment: variable → address, shared copy-on-write — cloning an
/// environment into a frame or successor state is a reference-count bump,
/// and the map is copied only when a shared handle is extended.
pub type Env<A> = CowMap<VarName, A>;

/// A reference to a continuation; `None` is the halt continuation.
pub type KontRef<A> = Option<A>;

/// A runtime object: its dynamic class and the addresses of its fields, in
/// the canonical field order of the class table.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Obj<A> {
    /// The dynamic class of the object.
    pub class: ClassName,
    /// The addresses of its fields (inherited fields first).
    pub fields: Vec<A>,
}

impl<A: fmt::Debug> fmt::Debug for Obj<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.class, self.fields)
    }
}

impl<A: Address> Touches<A> for Obj<A> {
    fn touches(&self) -> BTreeSet<A> {
        self.fields.iter().cloned().collect()
    }
}

/// A continuation frame.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kont<A> {
    /// After evaluating the receiver of a field access, project the field.
    FieldK {
        /// The label of the field access.
        site: Label,
        /// The accessed field.
        field: FieldName,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// After evaluating the receiver of a call, evaluate the arguments.
    CallRcvK {
        /// The label of the call.
        site: Label,
        /// The invoked method.
        method: MethodName,
        /// The argument expressions, still to be evaluated.
        args: Vec<Expr>,
        /// The environment the arguments are evaluated in.
        env: Env<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// Evaluating the arguments of a call, receiver already evaluated.
    CallArgsK {
        /// The label of the call.
        site: Label,
        /// The invoked method.
        method: MethodName,
        /// The evaluated receiver.
        receiver: Obj<A>,
        /// The evaluated arguments so far.
        done: Vec<Obj<A>>,
        /// The argument expressions still to be evaluated.
        rest: Vec<Expr>,
        /// The environment the arguments are evaluated in.
        env: Env<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// Evaluating the constructor arguments of `new C(…)`.
    NewK {
        /// The label of the construction.
        site: Label,
        /// The class being constructed.
        class: ClassName,
        /// The evaluated arguments so far.
        done: Vec<Obj<A>>,
        /// The argument expressions still to be evaluated.
        rest: Vec<Expr>,
        /// The environment the arguments are evaluated in.
        env: Env<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// After evaluating the subject of a cast, check it.
    CastK {
        /// The label of the cast.
        site: Label,
        /// The target class.
        class: ClassName,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
}

impl<A: fmt::Debug> fmt::Debug for Kont<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kont::FieldK { field, .. } => write!(f, "·.{}", field),
            Kont::CallRcvK { method, .. } => write!(f, "·.{}(…)", method),
            Kont::CallArgsK { method, done, .. } => {
                write!(f, "call {}[{} done]", method, done.len())
            }
            Kont::NewK { class, done, .. } => write!(f, "new {}[{} done]", class, done.len()),
            Kont::CastK { class, .. } => write!(f, "({}) ·", class),
        }
    }
}

impl<A: Address> Touches<A> for Kont<A> {
    fn touches(&self) -> BTreeSet<A> {
        fn env_touch<A: Address>(env: &Env<A>) -> BTreeSet<A> {
            env.values().cloned().collect()
        }
        let mut out = BTreeSet::new();
        match self {
            Kont::FieldK { next, .. } | Kont::CastK { next, .. } => {
                out.extend(next.clone());
            }
            Kont::CallRcvK { env, next, .. } => {
                out.extend(env_touch(env));
                out.extend(next.clone());
            }
            Kont::CallArgsK {
                receiver,
                done,
                env,
                next,
                ..
            } => {
                out.extend(receiver.touches());
                for o in done {
                    out.extend(o.touches());
                }
                out.extend(env_touch(env));
                out.extend(next.clone());
            }
            Kont::NewK {
                done, env, next, ..
            } => {
                for o in done {
                    out.extend(o.touches());
                }
                out.extend(env_touch(env));
                out.extend(next.clone());
            }
        }
        out
    }
}

/// What lives at a store address: an object value or a continuation frame.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Storable<A> {
    /// An object.
    Val(Obj<A>),
    /// A continuation frame.
    Kont(Kont<A>),
}

impl<A> Storable<A> {
    /// The object, if this storable is one.
    pub fn as_val(&self) -> Option<&Obj<A>> {
        match self {
            Storable::Val(v) => Some(v),
            Storable::Kont(_) => None,
        }
    }

    /// The continuation, if this storable is one.
    pub fn as_kont(&self) -> Option<&Kont<A>> {
        match self {
            Storable::Kont(k) => Some(k),
            Storable::Val(_) => None,
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for Storable<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storable::Val(v) => write!(f, "{:?}", v),
            Storable::Kont(k) => write!(f, "{:?}", k),
        }
    }
}

impl<A: Address> Touches<A> for Storable<A> {
    fn touches(&self) -> BTreeSet<A> {
        match self {
            Storable::Val(v) => v.touches(),
            Storable::Kont(k) => k.touches(),
        }
    }
}

/// The control component of an FJ machine state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Control<A> {
    /// Evaluating an expression.
    Eval(Arc<Expr>),
    /// Returning an object to the continuation.
    Value(Obj<A>),
    /// The machine has halted with this object.
    Halted(Obj<A>),
    /// The machine is stuck (failed downcast, missing method, …); the
    /// string records why.  Stuck states step to themselves.
    Stuck(String),
}

impl<A: fmt::Debug> fmt::Debug for Control<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Control::Eval(e) => write!(f, "eval {}", e),
            Control::Value(v) => write!(f, "value {:?}", v),
            Control::Halted(v) => write!(f, "halted {:?}", v),
            Control::Stuck(why) => write!(f, "stuck: {}", why),
        }
    }
}

/// A partial machine state: control, environment and continuation pointer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PState<A> {
    /// The control component.
    pub control: Control<A>,
    /// The environment (meaningful while evaluating).
    pub env: Env<A>,
    /// The continuation pointer.
    pub kont: KontRef<A>,
}

impl<A> PState<A> {
    /// The initial state of a program's `main` expression.
    pub fn inject(main: Expr) -> Self {
        PState {
            control: Control::Eval(Arc::new(main)),
            env: Env::new(),
            kont: None,
        }
    }

    /// Whether the machine has halted normally.
    pub fn is_final(&self) -> bool {
        matches!(self.control, Control::Halted(_))
    }

    /// Whether the machine is stuck.
    pub fn is_stuck(&self) -> bool {
        matches!(self.control, Control::Stuck(_))
    }

    /// The abstract error message, if the machine is stuck.  Stuck states
    /// are final for [`mnext`] (they self-loop), so the analysis' power-set
    /// of reachable states collects them — the FJ face of the `Either`-style
    /// abstract error layer shared with the two λ-calculi.
    pub fn error(&self) -> Option<&str> {
        match &self.control {
            Control::Stuck(why) => Some(why),
            _ => None,
        }
    }

    /// The result object, if the machine has halted.
    pub fn result(&self) -> Option<&Obj<A>> {
        match &self.control {
            Control::Halted(v) => Some(v),
            _ => None,
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for PState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?}, {:?}, {:?}⟩", self.control, self.env, self.kont)
    }
}

impl<A: Address> Touches<A> for PState<A> {
    fn touches(&self) -> BTreeSet<A> {
        let mut out: BTreeSet<A> = match &self.control {
            Control::Eval(e) => e
                .free_vars()
                .iter()
                .filter_map(|v| self.env.get(v).cloned())
                .collect(),
            Control::Value(v) | Control::Halted(v) => v.touches(),
            Control::Stuck(_) => BTreeSet::new(),
        };
        out.extend(self.kont.clone());
        out
    }
}

/// The worklist engine's view of a state's read set: the same roots abstract
/// GC starts from ([`Touches`]), with the address type pinned down so the
/// engine can close them over the shared store.
impl<A: Address> StateRoots for PState<A> {
    type Addr = A;

    fn state_roots(&self) -> BTreeSet<A> {
        self.touches()
    }
}

/// The semantic interface of Featherweight Java: how the machine interacts
/// with the store, addresses and time.  The same `StorePassing` monad,
/// contexts, stores and garbage collector used for CPS and the CESK machine
/// implement it (see `crate::analysis`), which is the reuse claim of the
/// paper.
pub trait FjInterface<A: Address>: MonadFamily {
    /// Looks up a variable.
    fn lookup(env: &Env<A>, var: &VarName) -> Self::M<Obj<A>>;

    /// Fetches the object(s) stored at an address (used for field reads).
    fn fetch(addr: &A) -> Self::M<Obj<A>>;

    /// Fetches a continuation frame.
    fn kont_at(addr: &A) -> Self::M<Kont<A>>;

    /// Binds an object in the store.
    fn bind_val(addr: A, val: Obj<A>) -> Self::M<()>;

    /// Binds a continuation frame in the store.
    fn bind_kont(addr: A, kont: Kont<A>) -> Self::M<()>;

    /// Allocates an address for the given (variable or field) name.
    fn alloc(name: &Name) -> Self::M<A>;

    /// Allocates an address for a continuation of the given kind created
    /// at `site`.
    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<A>;

    /// Advances time across the program point `site`.
    fn tick(site: Label) -> Self::M<()>;
}

/// The kind of continuation frame being allocated; frames of different
/// kinds created at the same program point are kept at distinct synthetic
/// names so that even a monovariant context does not conflate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KontKind {
    /// A field-projection frame.
    Field,
    /// A receiver-evaluation frame.
    Rcv,
    /// An argument-evaluation frame.
    Args,
    /// A constructor-argument frame.
    New,
    /// A cast frame.
    Cast,
}

impl KontKind {
    /// A short tag used in synthetic continuation names.
    pub fn tag(self) -> &'static str {
        match self {
            KontKind::Field => "field",
            KontKind::Rcv => "rcv",
            KontKind::Args => "args",
            KontKind::New => "new",
            KontKind::Cast => "cast",
        }
    }
}

/// The synthetic name under which continuations of a given kind created at
/// a site are allocated.
pub fn kont_name(site: Label, kind: KontKind) -> Name {
    // Minted once per transition at every allocation site: served from the
    // global synthetic-name cache, so the format and pool lookup happen
    // only on first sight of a (kind, site) pair.
    Name::synthetic("$kont-", kind.tag(), site.index())
}

/// The synthetic name under which the field `field` of a `new class(…)`
/// allocation is stored.
pub fn field_name(class: &ClassName, field: &FieldName) -> Name {
    Name::from(format!("{}.{}", class, field))
}

fn stuck<A: Address>(why: impl Into<String>) -> PState<A> {
    PState {
        control: Control::Stuck(why.into()),
        env: Env::new(),
        kont: None,
    }
}

/// The monadic transition function of the Featherweight Java machine,
/// parameterized by the class table and written once against
/// [`FjInterface`].
pub fn mnext<M, A>(table: &ClassTable, ps: PState<A>) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    match ps.control.clone() {
        Control::Eval(expr) => step_eval::<M, A>(table, expr, ps),
        Control::Value(value) => step_value::<M, A>(table, value, ps),
        Control::Halted(_) | Control::Stuck(_) => M::pure(ps),
    }
}

fn push_frame_and_eval<M, A>(
    site: Label,
    kind: KontKind,
    frame: Kont<A>,
    next_control: Arc<Expr>,
    env: Env<A>,
) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    M::bind(M::alloc_kont(site, kind), move |addr| {
        let frame = frame.clone();
        let env = env.clone();
        let next_control = next_control.clone();
        let keep = addr.clone();
        M::bind(M::bind_kont(addr, frame), move |_| {
            M::pure(PState {
                control: Control::Eval(next_control.clone()),
                env: env.clone(),
                kont: Some(keep.clone()),
            })
        })
    })
}

fn step_eval<M, A>(table: &ClassTable, expr: Arc<Expr>, ps: PState<A>) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    let env = ps.env.clone();
    let kont = ps.kont.clone();
    match expr.as_ref().clone() {
        // The environment lives in the state, not the monad, so an unbound
        // variable is detected *before* the monadic lookup — the check (and
        // the stuck successor it produces) is identical on every carrier.
        Expr::Var(v) if env.get(&v).is_none() => {
            M::pure(stuck(format!("unbound variable `{}`", v)))
        }
        Expr::Var(v) => M::bind(M::lookup(&env, &v), move |obj| {
            M::pure(PState {
                control: Control::Value(obj),
                env: Env::new(),
                kont: kont.clone(),
            })
        }),
        Expr::FieldAccess {
            label,
            object,
            field,
        } => push_frame_and_eval::<M, A>(
            label,
            KontKind::Field,
            Kont::FieldK {
                site: label,
                field,
                next: kont,
            },
            object,
            env,
        ),
        Expr::MethodCall {
            label,
            object,
            method,
            args,
        } => push_frame_and_eval::<M, A>(
            label,
            KontKind::Rcv,
            Kont::CallRcvK {
                site: label,
                method,
                args,
                env: env.clone(),
                next: kont,
            },
            object,
            env,
        ),
        Expr::New { label, class, args } => {
            if table.fields(&class).is_err() {
                return M::pure(stuck(format!("new of unknown class {class}")));
            }
            match args.split_first() {
                None => construct::<M, A>(table, label, class, Vec::new(), kont),
                Some((first, rest)) => push_frame_and_eval::<M, A>(
                    label,
                    KontKind::New,
                    Kont::NewK {
                        site: label,
                        class,
                        done: Vec::new(),
                        rest: rest.to_vec(),
                        env: env.clone(),
                        next: kont,
                    },
                    Arc::new(first.clone()),
                    env,
                ),
            }
        }
        Expr::Cast {
            label,
            class,
            object,
        } => push_frame_and_eval::<M, A>(
            label,
            KontKind::Cast,
            Kont::CastK {
                site: label,
                class,
                next: kont,
            },
            object,
            env,
        ),
    }
}

/// Allocates addresses for every field of `class`, writes the argument
/// objects into them, and returns the freshly constructed object.
fn construct<M, A>(
    table: &ClassTable,
    site: Label,
    class: ClassName,
    args: Vec<Obj<A>>,
    kont: KontRef<A>,
) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    let fields = match table.fields(&class) {
        Ok(fields) => fields,
        Err(e) => return M::pure(stuck(e.to_string())),
    };
    if fields.len() != args.len() {
        return M::pure(stuck(format!(
            "new {class} expected {} arguments, got {}",
            fields.len(),
            args.len()
        )));
    }
    let names: Vec<Name> = fields.iter().map(|(_, f)| field_name(&class, f)).collect();
    M::bind(M::tick(site), move |_| {
        let names = names.clone();
        let args = args.clone();
        let class = class.clone();
        let kont = kont.clone();
        M::bind(
            map_m::<M, Name, A, _>(|n| M::alloc(&n), names),
            move |addrs| {
                let writes: Vec<M::M<()>> = addrs
                    .iter()
                    .cloned()
                    .zip(args.iter().cloned())
                    .map(|(a, o)| M::bind_val(a, o))
                    .collect();
                let object = Obj {
                    class: class.clone(),
                    fields: addrs.clone(),
                };
                let kont = kont.clone();
                M::bind(mai_core::monad::sequence_m::<M, ()>(writes), move |_| {
                    M::pure(PState {
                        control: Control::Value(object.clone()),
                        env: Env::new(),
                        kont: kont.clone(),
                    })
                })
            },
        )
    })
}

/// Invokes `method` on `receiver` with the given evaluated arguments.
fn invoke<M, A>(
    table: &ClassTable,
    site: Label,
    method: &MethodName,
    receiver: Obj<A>,
    args: Vec<Obj<A>>,
    kont: KontRef<A>,
) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    let (_, decl) = match table.mbody(method, &receiver.class) {
        Ok(found) => found,
        Err(e) => return M::pure(stuck(e.to_string())),
    };
    if decl.params.len() != args.len() {
        return M::pure(stuck(format!(
            "method {method} expected {} arguments, got {}",
            decl.params.len(),
            args.len()
        )));
    }
    let param_names: Vec<Name> = std::iter::once(this_var())
        .chain(decl.params.iter().map(|(_, n)| n.clone()))
        .collect();
    let body = Arc::new(decl.body.clone());
    M::bind(M::tick(site), move |_| {
        let param_names = param_names.clone();
        let body = body.clone();
        let kont = kont.clone();
        let receiver = receiver.clone();
        let args = args.clone();
        M::bind(
            map_m::<M, Name, A, _>(|n| M::alloc(&n), param_names.clone()),
            move |addrs| {
                let mut env = Env::new();
                for (name, addr) in param_names.iter().zip(addrs.iter()) {
                    env.insert(name.clone(), addr.clone());
                }
                let values: Vec<Obj<A>> = std::iter::once(receiver.clone())
                    .chain(args.iter().cloned())
                    .collect();
                let writes: Vec<M::M<()>> = addrs
                    .iter()
                    .cloned()
                    .zip(values)
                    .map(|(a, o)| M::bind_val(a, o))
                    .collect();
                let body = body.clone();
                let kont = kont.clone();
                M::bind(mai_core::monad::sequence_m::<M, ()>(writes), move |_| {
                    M::pure(PState {
                        control: Control::Eval(body.clone()),
                        env: env.clone(),
                        kont: kont.clone(),
                    })
                })
            },
        )
    })
}

fn step_value<M, A>(table: &ClassTable, value: Obj<A>, ps: PState<A>) -> M::M<PState<A>>
where
    M: FjInterface<A>,
    A: Address,
{
    match ps.kont.clone() {
        None => M::pure(PState {
            control: Control::Halted(value),
            env: Env::new(),
            kont: None,
        }),
        Some(addr) => {
            let table = table.clone();
            M::bind(M::kont_at(&addr), move |frame| {
                let value = value.clone();
                let table = table.clone();
                match frame {
                    Kont::FieldK { field, next, .. } => {
                        let index = match table.field_index(&value.class, &field) {
                            Ok(i) => i,
                            Err(e) => return M::pure(stuck(e.to_string())),
                        };
                        let Some(field_addr) = value.fields.get(index).cloned() else {
                            return M::pure(stuck(format!(
                                "object of class {} has no slot for field {}",
                                value.class, field
                            )));
                        };
                        let next = next.clone();
                        M::bind(M::fetch(&field_addr), move |obj| {
                            M::pure(PState {
                                control: Control::Value(obj),
                                env: Env::new(),
                                kont: next.clone(),
                            })
                        })
                    }
                    Kont::CallRcvK {
                        site,
                        method,
                        args,
                        env,
                        next,
                    } => match args.split_first() {
                        None => invoke::<M, A>(&table, site, &method, value, Vec::new(), next),
                        Some((first, rest)) => push_frame_and_eval::<M, A>(
                            site,
                            KontKind::Args,
                            Kont::CallArgsK {
                                site,
                                method,
                                receiver: value,
                                done: Vec::new(),
                                rest: rest.to_vec(),
                                env: env.clone(),
                                next,
                            },
                            Arc::new(first.clone()),
                            env,
                        ),
                    },
                    Kont::CallArgsK {
                        site,
                        method,
                        receiver,
                        mut done,
                        rest,
                        env,
                        next,
                    } => {
                        done.push(value);
                        match rest.split_first() {
                            None => invoke::<M, A>(&table, site, &method, receiver, done, next),
                            Some((first, remaining)) => push_frame_and_eval::<M, A>(
                                site,
                                KontKind::Args,
                                Kont::CallArgsK {
                                    site,
                                    method,
                                    receiver,
                                    done,
                                    rest: remaining.to_vec(),
                                    env: env.clone(),
                                    next,
                                },
                                Arc::new(first.clone()),
                                env,
                            ),
                        }
                    }
                    Kont::NewK {
                        site,
                        class,
                        mut done,
                        rest,
                        env,
                        next,
                    } => {
                        done.push(value);
                        match rest.split_first() {
                            None => construct::<M, A>(&table, site, class, done, next),
                            Some((first, remaining)) => push_frame_and_eval::<M, A>(
                                site,
                                KontKind::New,
                                Kont::NewK {
                                    site,
                                    class,
                                    done,
                                    rest: remaining.to_vec(),
                                    env: env.clone(),
                                    next,
                                },
                                Arc::new(first.clone()),
                                env,
                            ),
                        }
                    }
                    Kont::CastK { class, next, .. } => {
                        match table.is_subtype(&value.class, &class) {
                            Ok(true) => M::pure(PState {
                                control: Control::Value(value),
                                env: Env::new(),
                                kont: next,
                            }),
                            Ok(false) => M::pure(stuck(format!(
                                "failed cast of {} to {}",
                                value.class, class
                            ))),
                            Err(e) => M::pure(stuck(e.to_string())),
                        }
                    }
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{class, ExprBuilder};

    #[test]
    fn inject_and_projections() {
        let mut b = ExprBuilder::new();
        let ps: PState<u32> = PState::inject(b.new_object("A", vec![]));
        assert!(!ps.is_final());
        assert!(!ps.is_stuck());
        assert!(ps.result().is_none());
        assert!(ps.kont.is_none());
    }

    #[test]
    fn objects_touch_their_fields_and_konts_touch_their_parts() {
        let obj: Obj<u32> = Obj {
            class: Name::from("Pair"),
            fields: vec![1, 2],
        };
        assert_eq!(obj.touches(), [1u32, 2].into_iter().collect());

        let k: Kont<u32> = Kont::CallArgsK {
            site: Label::new(1),
            method: Name::from("m"),
            receiver: obj.clone(),
            done: vec![Obj {
                class: Name::from("A"),
                fields: vec![7],
            }],
            rest: vec![],
            env: [(Name::from("x"), 9u32)].into_iter().collect(),
            next: Some(11),
        };
        assert_eq!(
            Touches::<u32>::touches(&k),
            [1u32, 2, 7, 9, 11].into_iter().collect()
        );
    }

    #[test]
    fn state_touches_follow_the_control() {
        let obj: Obj<u32> = Obj {
            class: Name::from("A"),
            fields: vec![4],
        };
        let ps = PState {
            control: Control::Value(obj),
            env: Env::new(),
            kont: Some(5u32),
        };
        assert_eq!(ps.touches(), [4u32, 5].into_iter().collect());
        let stuck_state: PState<u32> = stuck("why");
        assert!(stuck_state.touches().is_empty());
        assert!(stuck_state.is_stuck());
    }

    #[test]
    fn helper_names_are_deterministic() {
        assert_eq!(
            kont_name(Label::new(3), KontKind::Rcv),
            kont_name(Label::new(3), KontKind::Rcv)
        );
        assert_ne!(
            kont_name(Label::new(3), KontKind::Rcv),
            kont_name(Label::new(4), KontKind::Rcv)
        );
        assert_ne!(
            kont_name(Label::new(3), KontKind::Rcv),
            kont_name(Label::new(3), KontKind::Args)
        );
        assert_eq!(
            field_name(&Name::from("Pair"), &Name::from("first")).as_str(),
            "Pair.first"
        );
    }

    #[test]
    fn storable_projections() {
        let obj: Obj<u32> = Obj {
            class: Name::from("A"),
            fields: vec![],
        };
        let v = Storable::Val(obj.clone());
        let k: Storable<u32> = Storable::Kont(Kont::FieldK {
            site: Label::new(1),
            field: Name::from("f"),
            next: None,
        });
        assert!(v.as_val().is_some() && v.as_kont().is_none());
        assert!(k.as_kont().is_some() && k.as_val().is_none());
        let _ = class("A", "Object", &[], vec![]); // silence unused import lint in this test module
    }
}
