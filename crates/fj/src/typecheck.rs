//! The Featherweight Java type system (Igarashi, Pierce & Wadler), used to
//! validate programs before they are interpreted or analysed.

use std::collections::BTreeMap;
use std::fmt;

use mai_core::name::Name;

use crate::syntax::{
    object_class, this_var, ClassName, ClassTable, Expr, MethodDecl, Program, TableError, VarName,
};

/// A typing environment: variable → declared class.
pub type TypeEnv = BTreeMap<VarName, ClassName>;

/// A type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A class-table lookup failed.
    Table(TableError),
    /// An unbound variable was referenced.
    UnboundVariable(VarName),
    /// A constructor received the wrong number of arguments.
    ConstructorArity {
        /// The constructed class.
        class: ClassName,
        /// How many fields the class has.
        expected: usize,
        /// How many arguments were supplied.
        found: usize,
    },
    /// A method received the wrong number of arguments.
    MethodArity {
        /// The invoked method.
        method: Name,
        /// Expected argument count.
        expected: usize,
        /// Supplied argument count.
        found: usize,
    },
    /// An expression's type is not a subtype of what the context requires.
    NotASubtype {
        /// The inferred type.
        found: ClassName,
        /// The required supertype.
        required: ClassName,
    },
    /// A cast between unrelated classes ("stupid cast" in FJ parlance).
    StupidCast {
        /// The cast target.
        target: ClassName,
        /// The type of the expression being cast.
        found: ClassName,
    },
    /// A method override changes the signature of the inherited method.
    InvalidOverride {
        /// The class declaring the override.
        class: ClassName,
        /// The offending method.
        method: Name,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Table(e) => write!(f, "{}", e),
            TypeError::UnboundVariable(v) => write!(f, "unbound variable {}", v),
            TypeError::ConstructorArity {
                class,
                expected,
                found,
            } => write!(
                f,
                "new {} expects {} arguments, found {}",
                class, expected, found
            ),
            TypeError::MethodArity {
                method,
                expected,
                found,
            } => write!(
                f,
                "method {} expects {} arguments, found {}",
                method, expected, found
            ),
            TypeError::NotASubtype { found, required } => {
                write!(f, "{} is not a subtype of {}", found, required)
            }
            TypeError::StupidCast { target, found } => {
                write!(f, "cast of {} to unrelated class {}", found, target)
            }
            TypeError::InvalidOverride { class, method } => {
                write!(
                    f,
                    "class {} overrides {} with a different signature",
                    class, method
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

impl From<TableError> for TypeError {
    fn from(e: TableError) -> Self {
        TypeError::Table(e)
    }
}

/// Infers the type of an expression under a typing environment.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed.
pub fn type_of(table: &ClassTable, env: &TypeEnv, expr: &Expr) -> Result<ClassName, TypeError> {
    match expr {
        Expr::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(v.clone())),
        Expr::FieldAccess { object, field, .. } => {
            let receiver = type_of(table, env, object)?;
            let fields = table.fields(&receiver)?;
            fields
                .iter()
                .find(|(_, f)| f == field)
                .map(|(t, _)| t.clone())
                .ok_or(TypeError::Table(TableError::UnknownField(
                    receiver,
                    field.clone(),
                )))
        }
        Expr::MethodCall {
            object,
            method,
            args,
            ..
        } => {
            let receiver = type_of(table, env, object)?;
            let (param_types, return_type) = table.mtype(method, &receiver)?;
            if param_types.len() != args.len() {
                return Err(TypeError::MethodArity {
                    method: method.clone(),
                    expected: param_types.len(),
                    found: args.len(),
                });
            }
            for (arg, expected) in args.iter().zip(param_types.iter()) {
                let found = type_of(table, env, arg)?;
                if !table.is_subtype(&found, expected)? {
                    return Err(TypeError::NotASubtype {
                        found,
                        required: expected.clone(),
                    });
                }
            }
            Ok(return_type)
        }
        Expr::New { class, args, .. } => {
            let fields = table.fields(class)?;
            if fields.len() != args.len() {
                return Err(TypeError::ConstructorArity {
                    class: class.clone(),
                    expected: fields.len(),
                    found: args.len(),
                });
            }
            for (arg, (expected, _)) in args.iter().zip(fields.iter()) {
                let found = type_of(table, env, arg)?;
                if !table.is_subtype(&found, expected)? {
                    return Err(TypeError::NotASubtype {
                        found,
                        required: expected.clone(),
                    });
                }
            }
            Ok(class.clone())
        }
        Expr::Cast { class, object, .. } => {
            let found = type_of(table, env, object)?;
            let up = table.is_subtype(&found, class)?;
            let down = table.is_subtype(class, &found)?;
            if up || down {
                Ok(class.clone())
            } else {
                Err(TypeError::StupidCast {
                    target: class.clone(),
                    found,
                })
            }
        }
    }
}

fn check_method(table: &ClassTable, class: &ClassName, m: &MethodDecl) -> Result<(), TypeError> {
    // Parameter and return types must exist.
    table.ancestry(&m.return_type)?;
    for (t, _) in &m.params {
        table.ancestry(t)?;
    }
    // The body must be well-typed under this + params, at a subtype of the
    // declared return type.
    let mut env = TypeEnv::new();
    env.insert(this_var(), class.clone());
    for (t, x) in &m.params {
        env.insert(x.clone(), t.clone());
    }
    let body_type = type_of(table, &env, &m.body)?;
    if !table.is_subtype(&body_type, &m.return_type)? {
        return Err(TypeError::NotASubtype {
            found: body_type,
            required: m.return_type.clone(),
        });
    }
    // Overrides must preserve the signature.
    let decl = table.class(class).expect("checked by caller");
    if decl.superclass != object_class() {
        if let Ok((super_params, super_ret)) = table.mtype(&m.name, &decl.superclass) {
            let my_params: Vec<ClassName> = m.params.iter().map(|(t, _)| t.clone()).collect();
            if super_params != my_params || super_ret != m.return_type {
                return Err(TypeError::InvalidOverride {
                    class: class.clone(),
                    method: m.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Checks an entire program: every class and method is well-formed and the
/// `main` expression is well-typed in the empty environment.  Returns the
/// type of `main`.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
pub fn check_program(program: &Program) -> Result<ClassName, TypeError> {
    let table = &program.table;
    for decl in table.classes() {
        // The superclass chain must be acyclic and known.
        table.ancestry(&decl.name)?;
        for (t, _) in &decl.fields {
            table.ancestry(t)?;
        }
        for m in &decl.methods {
            check_method(table, &decl.name, m)?;
        }
    }
    type_of(table, &TypeEnv::new(), &program.main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{class, method, ExprBuilder};

    fn pair_program(main: Expr) -> Program {
        let mut b = ExprBuilder::new();
        let fst = method("Object", "fst", &[], b.field(Expr::var("this"), "first"));
        let snd = method("Object", "snd", &[], b.field(Expr::var("this"), "second"));
        let set_fst = {
            let body_snd = b.field(Expr::var("this"), "second");
            method(
                "Pair",
                "setFst",
                &[("Object", "newFirst")],
                b.new_object("Pair", vec![Expr::var("newFirst"), body_snd]),
            )
        };
        let table = ClassTable::new(vec![
            class("A", "Object", &[], vec![]),
            class("B", "A", &[], vec![]),
            class(
                "Pair",
                "Object",
                &[("Object", "first"), ("Object", "second")],
                vec![fst, snd, set_fst],
            ),
        ])
        .unwrap();
        Program { table, main }
    }

    fn new_pair(b: &mut ExprBuilder) -> Expr {
        let a = b.new_object("A", vec![]);
        let bb = b.new_object("B", vec![]);
        b.new_object("Pair", vec![a, bb])
    }

    #[test]
    fn well_typed_program_checks() {
        let mut b = ExprBuilder::new();
        let pair = new_pair(&mut b);
        let main = b.call(pair, "fst", vec![]);
        let program = pair_program(main);
        assert_eq!(check_program(&program).unwrap(), Name::from("Object"));
    }

    #[test]
    fn method_calls_check_arity_and_argument_types() {
        let mut b = ExprBuilder::new();
        let pair = new_pair(&mut b);
        let main = b.call(pair, "setFst", vec![]);
        assert!(matches!(
            check_program(&pair_program(main)),
            Err(TypeError::MethodArity { .. })
        ));

        let mut b = ExprBuilder::new();
        let pair = new_pair(&mut b);
        let a = b.new_object("A", vec![]);
        let main = b.call(pair, "setFst", vec![a]);
        assert_eq!(
            check_program(&pair_program(main)).unwrap(),
            Name::from("Pair")
        );
    }

    #[test]
    fn constructors_check_arity() {
        let mut b = ExprBuilder::new();
        let main = b.new_object("Pair", vec![]);
        assert!(matches!(
            check_program(&pair_program(main)),
            Err(TypeError::ConstructorArity { .. })
        ));
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut b = ExprBuilder::new();
        let main = b.new_object("Nope", vec![]);
        assert!(matches!(
            check_program(&pair_program(main)),
            Err(TypeError::Table(TableError::UnknownClass(_)))
        ));

        let mut b = ExprBuilder::new();
        let a = b.new_object("A", vec![]);
        let main = b.call(a, "missing", vec![]);
        assert!(matches!(
            check_program(&pair_program(main)),
            Err(TypeError::Table(TableError::UnknownMethod(_, _)))
        ));

        let main = Expr::var("loose");
        assert!(matches!(
            check_program(&pair_program(main)),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn casts_allow_up_and_down_but_not_sideways() {
        let mut b = ExprBuilder::new();
        let a = b.new_object("A", vec![]);
        let up = b.cast("Object", a);
        assert_eq!(check_program(&pair_program(up)).unwrap(), object_class());

        let mut b = ExprBuilder::new();
        let a = b.new_object("A", vec![]);
        let down = b.cast("B", a);
        assert_eq!(check_program(&pair_program(down)).unwrap(), Name::from("B"));

        let mut b = ExprBuilder::new();
        let a = b.new_object("A", vec![]);
        let sideways = b.cast("Pair", a);
        assert!(matches!(
            check_program(&pair_program(sideways)),
            Err(TypeError::StupidCast { .. })
        ));
    }

    #[test]
    fn ill_typed_method_bodies_are_rejected() {
        let mut b = ExprBuilder::new();
        let bad = method("Pair", "broken", &[], b.new_object("A", vec![]));
        let table = ClassTable::new(vec![
            class("A", "Object", &[], vec![]),
            class("Pair", "Object", &[("Object", "first")], vec![bad]),
        ])
        .unwrap();
        let mut b2 = ExprBuilder::new();
        let a = b2.new_object("A", vec![]);
        let program = Program {
            table,
            main: b2.new_object("Pair", vec![a]),
        };
        assert!(matches!(
            check_program(&program),
            Err(TypeError::NotASubtype { .. })
        ));
    }

    #[test]
    fn signature_changing_overrides_are_rejected() {
        let mut b = ExprBuilder::new();
        let base = method("Object", "get", &[], b.field(Expr::var("this"), "x"));
        let bad_override = method("Base", "get", &[], Expr::var("this"));
        let table = ClassTable::new(vec![
            class("Base", "Object", &[("Object", "x")], vec![base]),
            class("Derived", "Base", &[], vec![bad_override]),
        ])
        .unwrap();
        let program = Program {
            table,
            main: Expr::var("unused"),
        };
        // Even though main is ill-typed too, the override error should be
        // reported first (classes are checked before main).
        assert!(matches!(
            check_program(&program),
            Err(TypeError::InvalidOverride { .. })
        ));
    }

    #[test]
    fn type_errors_display_nonempty_messages() {
        let errors: Vec<TypeError> = vec![
            TypeError::UnboundVariable(Name::from("x")),
            TypeError::ConstructorArity {
                class: Name::from("C"),
                expected: 2,
                found: 1,
            },
            TypeError::MethodArity {
                method: Name::from("m"),
                expected: 1,
                found: 0,
            },
            TypeError::NotASubtype {
                found: Name::from("A"),
                required: Name::from("B"),
            },
            TypeError::StupidCast {
                target: Name::from("A"),
                found: Name::from("B"),
            },
            TypeError::InvalidOverride {
                class: Name::from("C"),
                method: Name::from("m"),
            },
            TypeError::Table(TableError::UnknownClass(Name::from("Z"))),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
