//! # mai-fj — Featherweight Java
//!
//! The third language substrate of the *Monadic Abstract Interpreters*
//! reproduction: Featherweight Java (Igarashi, Pierce & Wadler), analysed by
//! exactly the same monadic parameters — contexts, stores, counting,
//! garbage collection, per-state vs. shared stores — as the two λ-calculi.
//!
//! * [`syntax`] — expressions, class declarations and class tables with the
//!   standard *fields*/*mtype*/*mbody*/subtyping lookups.
//! * [`typecheck`] — the Featherweight Java type system.
//! * [`machine`] — the monadic abstract machine (store-allocated objects
//!   and continuations) behind the semantic interface
//!   [`machine::FjInterface`].
//! * [`concrete`] — the concrete interpreter.
//! * [`analysis`] — the monovariant and k-call-site-sensitive analyses,
//!   counting stores, abstract GC and class-flow extraction.
//! * [`programs`] — well-typed example programs and generators.
//!
//! ```rust
//! use mai_fj::programs::pair_fst;
//! use mai_fj::analysis::{analyse_kcfa_shared, result_classes};
//!
//! let program = pair_fst();
//! let result = analyse_kcfa_shared::<1>(&program);
//! assert_eq!(
//!     result_classes(&result),
//!     [mai_core::Name::from("A")].into_iter().collect()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod concrete;
pub mod direct;
pub mod machine;
pub mod programs;
pub mod syntax;
pub mod typecheck;

pub use analysis::{
    abstract_errors, analyse, analyse_kcfa, analyse_kcfa_shared, analyse_kcfa_shared_gc,
    analyse_kcfa_shared_gc_worklist, analyse_kcfa_shared_rescan, analyse_kcfa_shared_structural,
    analyse_kcfa_shared_worklist, analyse_kcfa_with_count, analyse_kcfa_with_count_worklist,
    analyse_kcfa_worklist, analyse_mono, analyse_mono_worklist, analyse_with_gc,
    analyse_with_gc_worklist, analyse_with_gc_worklist_rescan, analyse_with_gc_worklist_structural,
    analyse_worklist, analyse_worklist_rescan, analyse_worklist_structural, class_flow_map,
    distinct_env_count, result_classes, FjAnalyser, FjGc,
};
pub use analysis::{
    analyse_kcfa_shared_direct, analyse_kcfa_shared_direct_traced, analyse_kcfa_shared_elastic,
    analyse_kcfa_shared_elastic_traced, analyse_kcfa_shared_gc_direct,
    analyse_kcfa_shared_gc_elastic, analyse_kcfa_shared_parallel_traced,
    analyse_kcfa_with_count_direct, analyse_mono_direct, analyse_mono_elastic,
    analyse_with_gc_worklist_direct, analyse_worklist_direct, analyse_worklist_direct_traced,
    analyse_worklist_elastic_traced, analyse_worklist_parallel_traced,
};
pub use concrete::{run, run_with_limit, Outcome};
pub use direct::mnext_direct;
pub use machine::{mnext, Control, Env, FjInterface, Kont, KontKind, Obj, PState, Storable};
pub use syntax::{ClassDecl, ClassTable, Expr, ExprBuilder, MethodDecl, Program};
pub use typecheck::{check_program, type_of, TypeEnv, TypeError};
