//! The direct-style evaluation mode of the Featherweight Java machine.
//!
//! [`mnext_direct`] replays [`mnext`](crate::machine::mnext) — the monadic
//! FJ machine written against `FjInterface` — on the direct-style step
//! carrier ([`mai_core::monad::direct`]): every `bind` of the `Rc`-closure
//! original becomes plain control flow over an explicit `(context, store)`
//! pair.  Branch structure (one branch per fetched object or continuation
//! frame, in set order) is reproduced faithfully; the `Rc` carrier remains
//! the differential-testing oracle.

use std::collections::BTreeSet;
use std::sync::Arc;

use mai_core::addr::{Address, Context};
use mai_core::name::Label;
use mai_core::store::{fetch_filtered, StoreLike};

use crate::machine::{
    field_name, kont_name, Control, Env, Kont, KontKind, KontRef, Obj, PState, Storable,
};
use crate::syntax::{this_var, ClassName, ClassTable, Expr, MethodName};

type Branch<C, S> = ((PState<<C as Context>::Addr>, C), S);

fn stuck<A: Address>(why: impl Into<String>) -> PState<A> {
    PState {
        control: Control::Stuck(why.into()),
        env: Env::new(),
        kont: None,
    }
}

/// The objects bound at `addr`, via the shared lending fallback
/// ([`fetch_filtered`]).
fn objs_at<C, S>(store: &S, addr: &C::Addr) -> Vec<Obj<C::Addr>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    fetch_filtered(store, addr, Storable::as_val)
}

/// The continuation frames bound at `addr` (same lending contract).
fn konts_at<C, S>(store: &S, addr: &C::Addr) -> Vec<Kont<C::Addr>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    fetch_filtered(store, addr, Storable::as_kont)
}

/// Allocates a continuation frame at its synthetic name and pushes it:
/// the successor evaluates `next_control` under `env` with the frame as
/// its continuation.
fn push_frame<C, S>(
    site: Label,
    kind: KontKind,
    frame: Kont<C::Addr>,
    next_control: Arc<Expr>,
    env: Env<C::Addr>,
    ctx: C,
    mut store: S,
) -> Branch<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    let addr = ctx.valloc(&kont_name(site, kind));
    store.bind_in_place(addr.clone(), [Storable::Kont(frame)].into_iter().collect());
    (
        (
            PState {
                control: Control::Eval(next_control),
                env,
                kont: Some(addr),
            },
            ctx,
        ),
        store,
    )
}

/// Allocates addresses for every field of `class`, writes the argument
/// objects into them, and returns the freshly constructed object.
fn construct<C, S>(
    table: &ClassTable,
    site: Label,
    class: ClassName,
    args: Vec<Obj<C::Addr>>,
    kont: KontRef<C::Addr>,
    ctx: C,
    store: S,
) -> Branch<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    let fields = match table.fields(&class) {
        Ok(fields) => fields,
        Err(e) => return ((stuck(e.to_string()), ctx), store),
    };
    if fields.len() != args.len() {
        return (
            (
                stuck(format!(
                    "new {class} expected {} arguments, got {}",
                    fields.len(),
                    args.len()
                )),
                ctx,
            ),
            store,
        );
    }
    let ticked = ctx.advance(site);
    let addrs: Vec<C::Addr> = fields
        .iter()
        .map(|(_, f)| ticked.valloc(&field_name(&class, f)))
        .collect();
    let mut store = store;
    for (a, o) in addrs.iter().zip(args) {
        store.bind_in_place(a.clone(), [Storable::Val(o)].into_iter().collect());
    }
    let object = Obj {
        class,
        fields: addrs,
    };
    (
        (
            PState {
                control: Control::Value(object),
                env: Env::new(),
                kont,
            },
            ticked,
        ),
        store,
    )
}

/// Invokes `method` on `receiver` with the given evaluated arguments.
#[allow(clippy::too_many_arguments)] // mirrors the Rc `invoke`'s parameters plus the explicit context pair
fn invoke<C, S>(
    table: &ClassTable,
    site: Label,
    method: &MethodName,
    receiver: Obj<C::Addr>,
    args: Vec<Obj<C::Addr>>,
    kont: KontRef<C::Addr>,
    ctx: C,
    store: S,
) -> Branch<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    let (_, decl) = match table.mbody(method, &receiver.class) {
        Ok(found) => found,
        Err(e) => return ((stuck(e.to_string()), ctx), store),
    };
    if decl.params.len() != args.len() {
        return (
            (
                stuck(format!(
                    "method {method} expected {} arguments, got {}",
                    decl.params.len(),
                    args.len()
                )),
                ctx,
            ),
            store,
        );
    }
    let ticked = ctx.advance(site);
    let mut env = Env::new();
    let mut store = store;
    let names = std::iter::once(this_var()).chain(decl.params.iter().map(|(_, n)| n.clone()));
    let values = std::iter::once(receiver).chain(args);
    for (name, value) in names.zip(values) {
        let addr = ticked.valloc(&name);
        env.insert(name, addr.clone());
        store.bind_in_place(addr, [Storable::Val(value)].into_iter().collect());
    }
    let body = Arc::new(decl.body.clone());
    (
        (
            PState {
                control: Control::Eval(body),
                env,
                kont,
            },
            ticked,
        ),
        store,
    )
}

/// The direct-style FJ transition function — the same semantics as
/// [`mnext`](crate::machine::mnext), bind-for-bind, with the monadic
/// operations inlined against the explicit context.
pub fn mnext_direct<C, S>(
    table: &ClassTable,
    ps: PState<C::Addr>,
    ctx: C,
    store: S,
) -> Vec<Branch<C, S>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    match ps.control.clone() {
        Control::Eval(expr) => {
            let env = ps.env.clone();
            let kont = ps.kont.clone();
            match expr.as_ref().clone() {
                Expr::Var(v) => match env.get(&v) {
                    Some(addr) => objs_at::<C, S>(&store, addr)
                        .into_iter()
                        .map(|obj| {
                            (
                                (
                                    PState {
                                        control: Control::Value(obj),
                                        env: Env::new(),
                                        kont: kont.clone(),
                                    },
                                    ctx.clone(),
                                ),
                                store.clone(),
                            )
                        })
                        .collect(),
                    // Same pure env-miss check as `mnext`: an unbound
                    // variable becomes a stuck state, not an empty branch
                    // set (which the fixpoint could not distinguish from
                    // an unreached program point).
                    None => vec![((stuck(format!("unbound variable `{}`", v)), ctx), store)],
                },
                Expr::FieldAccess {
                    label,
                    object,
                    field,
                } => vec![push_frame(
                    label,
                    KontKind::Field,
                    Kont::FieldK {
                        site: label,
                        field,
                        next: kont,
                    },
                    object,
                    env,
                    ctx,
                    store,
                )],
                Expr::MethodCall {
                    label,
                    object,
                    method,
                    args,
                } => vec![push_frame(
                    label,
                    KontKind::Rcv,
                    Kont::CallRcvK {
                        site: label,
                        method,
                        args,
                        env: env.clone(),
                        next: kont,
                    },
                    object,
                    env,
                    ctx,
                    store,
                )],
                Expr::New { label, class, args } => {
                    if table.fields(&class).is_err() {
                        return vec![(
                            (stuck(format!("new of unknown class {class}")), ctx),
                            store,
                        )];
                    }
                    match args.split_first() {
                        None => vec![construct(table, label, class, Vec::new(), kont, ctx, store)],
                        Some((first, rest)) => vec![push_frame(
                            label,
                            KontKind::New,
                            Kont::NewK {
                                site: label,
                                class,
                                done: Vec::new(),
                                rest: rest.to_vec(),
                                env: env.clone(),
                                next: kont,
                            },
                            Arc::new(first.clone()),
                            env,
                            ctx,
                            store,
                        )],
                    }
                }
                Expr::Cast {
                    label,
                    class,
                    object,
                } => vec![push_frame(
                    label,
                    KontKind::Cast,
                    Kont::CastK {
                        site: label,
                        class,
                        next: kont,
                    },
                    object,
                    env,
                    ctx,
                    store,
                )],
            }
        }
        Control::Value(value) => match ps.kont.clone() {
            None => vec![(
                (
                    PState {
                        control: Control::Halted(value),
                        env: Env::new(),
                        kont: None,
                    },
                    ctx,
                ),
                store,
            )],
            Some(addr) => {
                let frames = konts_at::<C, S>(&store, &addr);
                let mut out = Vec::new();
                for frame in frames {
                    match frame {
                        Kont::FieldK { field, next, .. } => {
                            let index = match table.field_index(&value.class, &field) {
                                Ok(i) => i,
                                Err(e) => {
                                    out.push(((stuck(e.to_string()), ctx.clone()), store.clone()));
                                    continue;
                                }
                            };
                            let Some(field_addr) = value.fields.get(index).cloned() else {
                                out.push((
                                    (
                                        stuck(format!(
                                            "object of class {} has no slot for field {}",
                                            value.class, field
                                        )),
                                        ctx.clone(),
                                    ),
                                    store.clone(),
                                ));
                                continue;
                            };
                            for obj in objs_at::<C, S>(&store, &field_addr) {
                                out.push((
                                    (
                                        PState {
                                            control: Control::Value(obj),
                                            env: Env::new(),
                                            kont: next.clone(),
                                        },
                                        ctx.clone(),
                                    ),
                                    store.clone(),
                                ));
                            }
                        }
                        Kont::CallRcvK {
                            site,
                            method,
                            args,
                            env,
                            next,
                        } => match args.split_first() {
                            None => out.push(invoke(
                                table,
                                site,
                                &method,
                                value.clone(),
                                Vec::new(),
                                next,
                                ctx.clone(),
                                store.clone(),
                            )),
                            Some((first, rest)) => out.push(push_frame(
                                site,
                                KontKind::Args,
                                Kont::CallArgsK {
                                    site,
                                    method,
                                    receiver: value.clone(),
                                    done: Vec::new(),
                                    rest: rest.to_vec(),
                                    env: env.clone(),
                                    next,
                                },
                                Arc::new(first.clone()),
                                env,
                                ctx.clone(),
                                store.clone(),
                            )),
                        },
                        Kont::CallArgsK {
                            site,
                            method,
                            receiver,
                            mut done,
                            rest,
                            env,
                            next,
                        } => {
                            done.push(value.clone());
                            match rest.split_first() {
                                None => out.push(invoke(
                                    table,
                                    site,
                                    &method,
                                    receiver,
                                    done,
                                    next,
                                    ctx.clone(),
                                    store.clone(),
                                )),
                                Some((first, remaining)) => out.push(push_frame(
                                    site,
                                    KontKind::Args,
                                    Kont::CallArgsK {
                                        site,
                                        method,
                                        receiver,
                                        done,
                                        rest: remaining.to_vec(),
                                        env: env.clone(),
                                        next,
                                    },
                                    Arc::new(first.clone()),
                                    env,
                                    ctx.clone(),
                                    store.clone(),
                                )),
                            }
                        }
                        Kont::NewK {
                            site,
                            class,
                            mut done,
                            rest,
                            env,
                            next,
                        } => {
                            done.push(value.clone());
                            match rest.split_first() {
                                None => out.push(construct(
                                    table,
                                    site,
                                    class,
                                    done,
                                    next,
                                    ctx.clone(),
                                    store.clone(),
                                )),
                                Some((first, remaining)) => out.push(push_frame(
                                    site,
                                    KontKind::New,
                                    Kont::NewK {
                                        site,
                                        class,
                                        done,
                                        rest: remaining.to_vec(),
                                        env: env.clone(),
                                        next,
                                    },
                                    Arc::new(first.clone()),
                                    env,
                                    ctx.clone(),
                                    store.clone(),
                                )),
                            }
                        }
                        Kont::CastK { class, next, .. } => {
                            match table.is_subtype(&value.class, &class) {
                                Ok(true) => out.push((
                                    (
                                        PState {
                                            control: Control::Value(value.clone()),
                                            env: Env::new(),
                                            kont: next,
                                        },
                                        ctx.clone(),
                                    ),
                                    store.clone(),
                                )),
                                Ok(false) => out.push((
                                    (
                                        stuck(format!(
                                            "failed cast of {} to {}",
                                            value.class, class
                                        )),
                                        ctx.clone(),
                                    ),
                                    store.clone(),
                                )),
                                Err(e) => {
                                    out.push(((stuck(e.to_string()), ctx.clone()), store.clone()))
                                }
                            }
                        }
                    }
                }
                out
            }
        },
        Control::Halted(_) | Control::Stuck(_) => vec![((ps, ctx), store)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::KFjStore;
    use crate::machine::mnext;
    use mai_core::monad::{run_store_passing, StorePassing};
    use mai_core::{KCallAddr, KCallCtx};

    type Ctx = KCallCtx<1>;
    type M = StorePassing<Ctx, KFjStore>;

    #[test]
    fn carriers_agree_on_every_reachable_state_of_a_program() {
        let program = crate::programs::two_cells();
        let (fixpoint, _) = crate::analysis::analyse_kcfa_shared_worklist::<1>(&program);
        assert!(!fixpoint.states().is_empty());
        for (ps, ctx) in fixpoint.states() {
            let mut rc: Vec<((PState<KCallAddr>, Ctx), KFjStore)> = run_store_passing(
                mnext::<M, KCallAddr>(&program.table, ps.clone()),
                ctx.clone(),
                fixpoint.store().clone(),
            );
            let mut direct = mnext_direct::<Ctx, KFjStore>(
                &program.table,
                ps.clone(),
                ctx.clone(),
                fixpoint.store().clone(),
            );
            rc.sort();
            direct.sort();
            assert_eq!(rc, direct, "carriers diverged at {ps:?}");
        }
    }
}
