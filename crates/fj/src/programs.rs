//! Example and benchmark Featherweight Java programs.
//!
//! Each program is well-typed (checked in the tests via
//! [`crate::typecheck::check_program`]) and exercises a particular aspect of
//! the analyses: container polyvariance, dynamic dispatch, casts, and a
//! size-parameterised generator for scaling experiments.

use crate::syntax::{class, method, ClassTable, Expr, ExprBuilder, Program};

/// The classic Pair class table: empty marker classes `A`, `B` and a `Pair`
/// with `fst`/`snd` accessors and a functional setter.
pub fn pair_table() -> ClassTable {
    let mut b = ExprBuilder::new();
    let fst = method("Object", "fst", &[], b.field(Expr::var("this"), "first"));
    let snd = method("Object", "snd", &[], b.field(Expr::var("this"), "second"));
    let set_fst = {
        let second = b.field(Expr::var("this"), "second");
        method(
            "Pair",
            "setFst",
            &[("Object", "newFirst")],
            b.new_object("Pair", vec![Expr::var("newFirst"), second]),
        )
    };
    ClassTable::new(vec![
        class("A", "Object", &[], vec![]),
        class("B", "Object", &[], vec![]),
        class(
            "Pair",
            "Object",
            &[("Object", "first"), ("Object", "second")],
            vec![fst, snd, set_fst],
        ),
    ])
    .expect("pair table is well-formed")
}

/// `new Pair(new A(), new B()).fst()` — evaluates to an `A`.
pub fn pair_fst() -> Program {
    let mut b = ExprBuilder::new();
    let a = b.new_object("A", vec![]);
    let bee = b.new_object("B", vec![]);
    let pair = b.new_object("Pair", vec![a, bee]);
    let main = b.call(pair, "fst", vec![]);
    Program {
        table: pair_table(),
        main,
    }
}

/// `new Pair(new A(), new B()).setFst(new B()).fst()` — evaluates to a `B`.
pub fn pair_swap_first() -> Program {
    let mut b = ExprBuilder::new();
    let a = b.new_object("A", vec![]);
    let bee = b.new_object("B", vec![]);
    let pair = b.new_object("Pair", vec![a, bee]);
    let new_b = b.new_object("B", vec![]);
    let swapped = b.call(pair, "setFst", vec![new_b]);
    let main = b.call(swapped, "fst", vec![]);
    Program {
        table: pair_table(),
        main,
    }
}

/// A single-field `Cell` container with a `get` method, filled with an `A`
/// at one site and a `B` at another; the program returns the content of the
/// first cell.  A monovariant analysis conflates the two cells (the classic
/// container-imprecision example); a call-site-sensitive one does not.
pub fn two_cells() -> Program {
    let mut b = ExprBuilder::new();
    let get = method("Object", "get", &[], b.field(Expr::var("this"), "content"));
    let table = ClassTable::new(vec![
        class("A", "Object", &[], vec![]),
        class("B", "Object", &[], vec![]),
        class("Cell", "Object", &[("Object", "content")], vec![get]),
    ])
    .expect("cell table is well-formed");

    let a = b.new_object("A", vec![]);
    let cell_a = b.new_object("Cell", vec![a]);
    let first = b.call(cell_a, "get", vec![]);
    // The second cell is built and queried but its result is discarded by
    // wrapping both in a Pair-like use: here we simply build it as the
    // receiver of a second `get` whose value is ignored by returning the
    // first.  To keep FJ's expression language (no sequencing), we embed the
    // second cell as a constructor argument of a wrapper object.
    let bee = b.new_object("B", vec![]);
    let cell_b = b.new_object("Cell", vec![bee]);
    let second = b.call(cell_b, "get", vec![]);
    // new Cell(second).get() would return B; instead build
    // new Pair2(first, second).left() so both cells are exercised.
    let left = method("Object", "left", &[], b.field(Expr::var("this"), "l"));
    let table = {
        let mut decls: Vec<_> = table.classes().cloned().collect();
        decls.push(class(
            "Pair2",
            "Object",
            &[("Object", "l"), ("Object", "r")],
            vec![left],
        ));
        ClassTable::new(decls).expect("extended cell table is well-formed")
    };
    let pair2 = b.new_object("Pair2", vec![first, second]);
    let main = b.call(pair2, "left", vec![]);
    Program { table, main }
}

/// A class hierarchy with dynamic dispatch: `Shape.pick()` is overridden by
/// `Circle` and `Square`; the program calls it on a `Circle`.
pub fn shape_dispatch() -> Program {
    let mut b = ExprBuilder::new();
    let base_pick = method("Shape", "pick", &[], Expr::var("this"));
    let circle_pick = {
        let fresh = b.new_object("Circle", vec![]);
        method("Shape", "pick", &[], fresh)
    };
    let square_pick = {
        let fresh = b.new_object("Square", vec![]);
        method("Shape", "pick", &[], fresh)
    };
    let table = ClassTable::new(vec![
        class("Shape", "Object", &[], vec![base_pick]),
        class("Circle", "Shape", &[], vec![circle_pick]),
        class("Square", "Shape", &[], vec![square_pick]),
    ])
    .expect("shape table is well-formed");
    let receiver = b.new_object("Circle", vec![]);
    let main = b.call(receiver, "pick", vec![]);
    Program { table, main }
}

/// An upcast followed by a successful downcast back to `B`.
pub fn good_downcast() -> Program {
    let mut b = ExprBuilder::new();
    let table = ClassTable::new(vec![
        class("A", "Object", &[], vec![]),
        class("B", "A", &[], vec![]),
    ])
    .expect("cast table is well-formed");
    let bee = b.new_object("B", vec![]);
    let up = b.cast("A", bee);
    let main = b.cast("B", up);
    Program { table, main }
}

/// A downcast that must fail at run time (an `A` is cast to `B`).
pub fn bad_downcast() -> Program {
    let mut b = ExprBuilder::new();
    let table = ClassTable::new(vec![
        class("A", "Object", &[], vec![]),
        class("B", "A", &[], vec![]),
    ])
    .expect("cast table is well-formed");
    let a = b.new_object("A", vec![]);
    let main = b.cast("B", a);
    Program { table, main }
}

/// A chain of `n` nested `Cell` constructions, each wrapping the previous
/// one, finished with `n` nested `get` calls — a size-parameterised workload
/// for scaling experiments.
pub fn nested_cells(n: usize) -> Program {
    let mut b = ExprBuilder::new();
    let get = method("Object", "get", &[], b.field(Expr::var("this"), "content"));
    let table = ClassTable::new(vec![
        class("A", "Object", &[], vec![]),
        class("Cell", "Object", &[("Object", "content")], vec![get]),
    ])
    .expect("nested cell table is well-formed");
    let mut value = b.new_object("A", vec![]);
    for _ in 0..n {
        value = b.new_object("Cell", vec![value]);
    }
    let mut main = value;
    for i in 0..n {
        if i > 0 {
            // FJ has no generics: the result of `get` is an Object, so each
            // intermediate unwrapping needs a (runtime-checked) downcast.
            main = b.cast("Cell", main);
        }
        main = b.call(main, "get", vec![]);
    }
    Program { table, main }
}

/// The standard FJ corpus used by the experiment harness.
pub fn standard_corpus() -> Vec<(&'static str, Program)> {
    vec![
        ("pair-fst", pair_fst()),
        ("pair-swap", pair_swap_first()),
        ("two-cells", two_cells()),
        ("shape-dispatch", shape_dispatch()),
        ("good-downcast", good_downcast()),
        ("nested-cells-4", nested_cells(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyse_kcfa_shared, analyse_mono, result_classes};
    use crate::concrete::run_with_limit;
    use crate::machine::PState;
    use crate::typecheck::check_program;
    use mai_core::Name;

    #[test]
    fn every_corpus_program_typechecks() {
        for (name, program) in standard_corpus() {
            check_program(&program).unwrap_or_else(|e| panic!("{name} is ill-typed: {e}"));
        }
        check_program(&bad_downcast()).expect("downcasts are well-typed even when they fail");
        for n in 0..5 {
            check_program(&nested_cells(n)).expect("nested cells are well-typed");
        }
    }

    #[test]
    fn corpus_programs_run_and_analyse_consistently() {
        for (name, program) in standard_corpus() {
            let concrete = run_with_limit(&program, 100_000);
            assert!(concrete.halted(), "{name} did not halt concretely");
            let concrete_class = concrete.result_class().unwrap();
            let abstract_classes = result_classes(&analyse_kcfa_shared::<1>(&program));
            assert!(
                abstract_classes.contains(&concrete_class),
                "{name}: abstract result {abstract_classes:?} misses concrete {concrete_class}"
            );
            let mono_classes = result_classes(&analyse_mono(&program));
            assert!(
                mono_classes.contains(&concrete_class),
                "{name}: 0CFA result {mono_classes:?} misses concrete {concrete_class}"
            );
        }
    }

    #[test]
    fn nested_cells_scale_and_stay_sound() {
        for n in 1..5 {
            let program = nested_cells(n);
            let concrete = run_with_limit(&program, 100_000);
            assert_eq!(concrete.result_class(), Some(Name::from("A")));
            let shared = analyse_kcfa_shared::<1>(&program);
            assert!(shared.distinct_states().iter().any(PState::is_final));
        }
        assert!(nested_cells(6).main.size() > nested_cells(2).main.size());
    }
}
