//! The concrete Featherweight Java interpreter, recovered from the monadic
//! machine with a deterministic state monad over a real heap.

use std::collections::BTreeMap;
use std::fmt;

use mai_core::engine::Budget;
use mai_core::monad::{run_state, MonadFamily, MonadState, StateM};
use mai_core::name::{Label, Name};

use crate::machine::{kont_name, mnext, Env, FjInterface, Kont, KontKind, Obj, PState};
use crate::syntax::{ClassName, Program, VarName};

/// A concrete heap address.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapAddr {
    /// The name the cell was allocated for (variable, field or synthetic
    /// continuation name).
    pub name: Name,
    /// The globally unique allocation index.
    pub index: u64,
}

impl fmt::Debug for HeapAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}#{}", self.name, self.index)
    }
}

/// The concrete heap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Heap {
    next: u64,
    values: BTreeMap<HeapAddr, Obj<HeapAddr>>,
    konts: BTreeMap<HeapAddr, Kont<HeapAddr>>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// The number of cells ever allocated.
    pub fn allocation_count(&self) -> u64 {
        self.next
    }

    /// Reads an object cell.
    pub fn read(&self, addr: &HeapAddr) -> Option<&Obj<HeapAddr>> {
        self.values.get(addr)
    }
}

impl FjInterface<HeapAddr> for StateM<Heap> {
    fn lookup(env: &Env<HeapAddr>, var: &VarName) -> Self::M<Obj<HeapAddr>> {
        let addr = env
            .get(var)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable `{}` in concrete execution", var));
        Self::fetch(&addr)
    }

    fn fetch(addr: &HeapAddr) -> Self::M<Obj<HeapAddr>> {
        let addr = addr.clone();
        <Self as MonadState<Heap>>::gets(move |heap| {
            heap.values
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| panic!("object address {:?} read before write", addr))
        })
    }

    fn kont_at(addr: &HeapAddr) -> Self::M<Kont<HeapAddr>> {
        let addr = addr.clone();
        <Self as MonadState<Heap>>::gets(move |heap| {
            heap.konts
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| panic!("continuation address {:?} read before write", addr))
        })
    }

    fn bind_val(addr: HeapAddr, val: Obj<HeapAddr>) -> Self::M<()> {
        <Self as MonadState<Heap>>::modify(move |mut heap| {
            heap.values.insert(addr.clone(), val.clone());
            heap
        })
    }

    fn bind_kont(addr: HeapAddr, kont: Kont<HeapAddr>) -> Self::M<()> {
        <Self as MonadState<Heap>>::modify(move |mut heap| {
            heap.konts.insert(addr.clone(), kont.clone());
            heap
        })
    }

    fn alloc(name: &Name) -> Self::M<HeapAddr> {
        fresh(name.clone())
    }

    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<HeapAddr> {
        fresh(kont_name(site, kind))
    }

    fn tick(_site: Label) -> Self::M<()> {
        Self::pure(())
    }
}

fn fresh(name: Name) -> <StateM<Heap> as MonadFamily>::M<HeapAddr> {
    StateM::<Heap>::bind(<StateM<Heap> as MonadState<Heap>>::get(), move |heap| {
        let addr = HeapAddr {
            name: name.clone(),
            index: heap.next,
        };
        let mut bumped = heap.clone();
        bumped.next += 1;
        StateM::<Heap>::then(
            <StateM<Heap> as MonadState<Heap>>::put(bumped),
            StateM::<Heap>::pure(addr),
        )
    })
}

/// The outcome of a concrete FJ run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program evaluated to an object of this class.
    Halted {
        /// The result object.
        value: Obj<HeapAddr>,
        /// The final heap.
        heap: Heap,
        /// How many transitions were taken.
        steps: usize,
    },
    /// The machine got stuck (failed downcast, missing method, …).
    Stuck {
        /// Why the machine got stuck.
        reason: String,
    },
    /// The step budget ran out.
    OutOfFuel {
        /// The last state reached.
        state: PState<HeapAddr>,
    },
}

impl Outcome {
    /// Whether evaluation finished normally.
    pub fn halted(&self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }

    /// The class of the result, if evaluation finished.
    pub fn result_class(&self) -> Option<ClassName> {
        match self {
            Outcome::Halted { value, .. } => Some(value.class.clone()),
            _ => None,
        }
    }
}

/// Runs a Featherweight Java program concretely.
///
/// # Panics
///
/// Panics if the program references unbound variables (which
/// [`crate::typecheck::check_program`] rules out).
pub fn run_with_limit(program: &Program, max_steps: usize) -> Outcome {
    run_governed(program, &Budget::unlimited().with_max_steps(max_steps))
}

/// Runs a Featherweight Java program under a [`Budget`]: the governor is
/// consulted before every machine transition, so step limits, deadlines
/// and cancellation all land within one transition.  A concrete run has no
/// rounds, so the budget's round count advances in lockstep with its step
/// count.
///
/// # Panics
///
/// Panics if the program references unbound variables (which
/// [`crate::typecheck::check_program`] rules out).
pub fn run_governed(program: &Program, budget: &Budget) -> Outcome {
    let mut state = PState::inject(program.main.clone());
    let mut heap = Heap::new();
    let mut steps = 0usize;
    loop {
        if let Some(value) = state.result() {
            return Outcome::Halted {
                value: value.clone(),
                heap,
                steps,
            };
        }
        if let crate::machine::Control::Stuck(reason) = &state.control {
            return Outcome::Stuck {
                reason: reason.clone(),
            };
        }
        if budget.exhausted(steps, steps).is_some() {
            return Outcome::OutOfFuel { state };
        }
        let (next_state, next_heap) =
            run_state(mnext::<StateM<Heap>, HeapAddr>(&program.table, state), heap);
        state = next_state;
        heap = next_heap;
        steps += 1;
    }
}

/// Runs a Featherweight Java program with a generous default step budget.
///
/// # Panics
///
/// Panics if the program references unbound variables.
pub fn run(program: &Program) -> Outcome {
    run_with_limit(program, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn pair_fst_evaluates_to_an_a() {
        let out = run(&programs::pair_fst());
        assert!(out.halted());
        assert_eq!(out.result_class(), Some(Name::from("A")));
    }

    #[test]
    fn setter_builds_a_new_pair() {
        let out = run(&programs::pair_swap_first());
        assert!(out.halted());
        assert_eq!(out.result_class(), Some(Name::from("B")));
    }

    #[test]
    fn two_cells_returns_the_first_content() {
        let out = run(&programs::two_cells());
        assert_eq!(out.result_class(), Some(Name::from("A")));
    }

    #[test]
    fn good_downcast_succeeds_and_bad_downcast_sticks() {
        let ok = run(&programs::good_downcast());
        assert_eq!(ok.result_class(), Some(Name::from("B")));
        let bad = run(&programs::bad_downcast());
        assert!(matches!(bad, Outcome::Stuck { .. }));
    }

    #[test]
    fn visitor_dispatch_selects_the_overriding_method() {
        let out = run(&programs::shape_dispatch());
        assert!(out.halted());
        assert_eq!(out.result_class(), Some(Name::from("Circle")));
    }

    #[test]
    fn heaps_grow_with_every_allocation() {
        let out = run(&programs::pair_fst());
        if let Outcome::Halted { heap, steps, .. } = out {
            assert!(heap.allocation_count() > 0);
            assert!(steps > 0);
            assert!(heap
                .read(&HeapAddr {
                    name: Name::from("does-not-exist"),
                    index: 999,
                })
                .is_none());
        } else {
            panic!("expected halt");
        }
    }
}
