//! The direct-style evaluation mode of the CESK transition function.
//!
//! [`mnext_direct`] replays [`mnext`](crate::machine::mnext) — the monadic
//! CESK machine written against `CeskInterface` — on the direct-style step
//! carrier ([`mai_core::monad::direct`]): every `bind` of the `Rc`-closure
//! original becomes plain control flow over an explicit `(context, store)`
//! pair, so a transition allocates no `Rc<dyn Fn>`.  Branch structure
//! (one branch per fetched closure or continuation frame, in set order) is
//! reproduced faithfully; the `Rc` carrier remains the differential-testing
//! oracle.

use std::collections::BTreeSet;

use mai_core::addr::Context;
use mai_core::store::{fetch_filtered, StoreLike};

use crate::machine::{kont_name, Closure, Control, Env, Kont, KontKind, PState, Storable};
use crate::syntax::Term;

type Branches<C, S> = Vec<((PState<<C as Context>::Addr>, C), S)>;

/// One successor on an unchanged store.
fn pure_branch<C: Context, S>(ps: PState<C::Addr>, ctx: C, store: S) -> ((PState<C::Addr>, C), S) {
    ((ps, ctx), store)
}

/// The closures bound at `addr`, via the shared lending fallback
/// ([`fetch_filtered`]).
fn vals_at<C, S>(store: &S, addr: &C::Addr) -> Vec<Closure<C::Addr>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    fetch_filtered(store, addr, Storable::as_val)
}

/// The continuation frames bound at `addr` (same lending contract).
fn konts_at<C, S>(store: &S, addr: &C::Addr) -> Vec<Kont<C::Addr>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    fetch_filtered(store, addr, Storable::as_kont)
}

/// The direct-style CESK transition function — the same semantics as
/// [`mnext`](crate::machine::mnext), bind-for-bind, with the monadic
/// operations inlined against the explicit context:
///
/// * `lookup`/`kont_at` iterate the fetched set (one branch per element);
/// * `alloc_*` consult the context in place;
/// * `bind_*` are in-place weak updates on the branch's own store;
/// * `tick` advances the branch's context copy.
pub fn mnext_direct<C, S>(ps: PState<C::Addr>, ctx: C, store: S) -> Branches<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>,
{
    match ps.control.clone() {
        Control::Eval(term) => match term.as_ref().clone() {
            Term::Var(v) => match ps.env.get(&v) {
                Some(addr) => vals_at::<C, S>(&store, addr)
                    .into_iter()
                    .map(|value| {
                        pure_branch(
                            PState {
                                control: Control::Value(value),
                                env: Env::new(),
                                kont: ps.kont.clone(),
                            },
                            ctx.clone(),
                            store.clone(),
                        )
                    })
                    .collect(),
                // Same pure env-miss check as `mnext`: an unbound
                // variable becomes an error state, not an empty branch
                // set (which the fixpoint could not distinguish from an
                // unreached program point).
                None => vec![pure_branch(
                    PState {
                        control: Control::Error(format!("unbound variable `{}`", v)),
                        env: Env::new(),
                        kont: ps.kont,
                    },
                    ctx,
                    store,
                )],
            },
            Term::Lam { param, body } => vec![pure_branch(
                PState {
                    control: Control::Value(Closure {
                        param,
                        body,
                        env: ps.env.clone(),
                    }),
                    env: Env::new(),
                    kont: ps.kont,
                },
                ctx,
                store,
            )],
            Term::App { label, func, arg } => {
                let frame = Kont::Ar {
                    site: label,
                    arg,
                    env: ps.env.clone(),
                    next: ps.kont,
                };
                let addr = ctx.valloc(&kont_name(label, KontKind::Ar));
                let mut store = store;
                store.bind_in_place(addr.clone(), [Storable::Kont(frame)].into_iter().collect());
                vec![pure_branch(
                    PState {
                        control: Control::Eval(func),
                        env: ps.env,
                        kont: Some(addr),
                    },
                    ctx,
                    store,
                )]
            }
            Term::Let {
                label,
                name,
                rhs,
                body,
            } => {
                let frame = Kont::LetK {
                    site: label,
                    name,
                    body,
                    env: ps.env.clone(),
                    next: ps.kont,
                };
                let addr = ctx.valloc(&kont_name(label, KontKind::Let));
                let mut store = store;
                store.bind_in_place(addr.clone(), [Storable::Kont(frame)].into_iter().collect());
                vec![pure_branch(
                    PState {
                        control: Control::Eval(rhs),
                        env: ps.env,
                        kont: Some(addr),
                    },
                    ctx,
                    store,
                )]
            }
        },
        Control::Value(value) => match ps.kont.clone() {
            None => vec![pure_branch(
                PState {
                    control: Control::Halted(value),
                    env: Env::new(),
                    kont: None,
                },
                ctx,
                store,
            )],
            Some(addr) => {
                let frames = konts_at::<C, S>(&store, &addr);
                let mut out = Vec::new();
                for frame in frames {
                    match frame {
                        Kont::Ar {
                            site,
                            arg,
                            env,
                            next,
                        } => {
                            let fn_frame = Kont::Fn {
                                site,
                                closure: value.clone(),
                                next,
                            };
                            let kaddr = ctx.valloc(&kont_name(site, KontKind::Fn));
                            let mut branch_store = store.clone();
                            branch_store.bind_in_place(
                                kaddr.clone(),
                                [Storable::Kont(fn_frame)].into_iter().collect(),
                            );
                            out.push(pure_branch(
                                PState {
                                    control: Control::Eval(arg),
                                    env,
                                    kont: Some(kaddr),
                                },
                                ctx.clone(),
                                branch_store,
                            ));
                        }
                        Kont::Fn {
                            site,
                            closure,
                            next,
                        } => {
                            let ticked = ctx.clone().advance(site);
                            let vaddr = ticked.valloc(&closure.param);
                            let mut env = closure.env.clone();
                            env.insert(closure.param.clone(), vaddr.clone());
                            let mut branch_store = store.clone();
                            branch_store.bind_in_place(
                                vaddr,
                                [Storable::Val(value.clone())].into_iter().collect(),
                            );
                            out.push(pure_branch(
                                PState {
                                    control: Control::Eval(closure.body.clone()),
                                    env,
                                    kont: next,
                                },
                                ticked,
                                branch_store,
                            ));
                        }
                        Kont::LetK {
                            site,
                            name,
                            body,
                            env,
                            next,
                        } => {
                            let ticked = ctx.clone().advance(site);
                            let vaddr = ticked.valloc(&name);
                            let mut env = env.clone();
                            env.insert(name.clone(), vaddr.clone());
                            let mut branch_store = store.clone();
                            branch_store.bind_in_place(
                                vaddr,
                                [Storable::Val(value.clone())].into_iter().collect(),
                            );
                            out.push(pure_branch(
                                PState {
                                    control: Control::Eval(body),
                                    env,
                                    kont: next,
                                },
                                ticked,
                                branch_store,
                            ));
                        }
                    }
                }
                out
            }
        },
        Control::Halted(_) | Control::Error(_) => vec![pure_branch(ps, ctx, store)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::KCeskStore;
    use crate::machine::mnext;
    use crate::syntax::TermBuilder;
    use mai_core::monad::{run_store_passing, StorePassing};
    use mai_core::{KCallAddr, KCallCtx};

    type Ctx = KCallCtx<1>;
    type M = StorePassing<Ctx, KCeskStore>;

    #[test]
    fn carriers_agree_on_every_reachable_state_of_a_program() {
        let mut b = TermBuilder::new();
        let first = b.app(Term::var("f"), Term::lam("a", Term::var("a")));
        let second = b.app(Term::var("f"), Term::lam("b", Term::var("b")));
        let use_both = b.app(first, second);
        let program = b.let_in("f", Term::lam("x", Term::var("x")), use_both);

        let (fixpoint, _) = crate::analysis::analyse_kcfa_shared_worklist::<1>(&program);
        assert!(!fixpoint.states().is_empty());
        for (ps, ctx) in fixpoint.states() {
            let mut rc: Vec<((PState<KCallAddr>, Ctx), KCeskStore)> = run_store_passing(
                mnext::<M, KCallAddr>(ps.clone()),
                ctx.clone(),
                fixpoint.store().clone(),
            );
            let mut direct =
                mnext_direct::<Ctx, KCeskStore>(ps.clone(), ctx.clone(), fixpoint.store().clone());
            rc.sort();
            direct.sort();
            assert_eq!(rc, direct, "carriers diverged at {ps:?}");
        }
    }

    #[test]
    fn carriers_agree_on_stuck_states_of_an_open_program() {
        // `(λx. x) free` — the argument position references an unbound
        // variable, so both carriers must produce the same error state
        // (and self-loop on it) rather than dropping the branch.
        let mut b = TermBuilder::new();
        let program = b.app(Term::lam("x", Term::var("x")), Term::var("free"));

        let (fixpoint, _) = crate::analysis::analyse_kcfa_shared_worklist::<1>(&program);
        assert!(
            fixpoint.states().iter().any(|(ps, _)| ps.is_error()),
            "the unbound variable never surfaced as an error state"
        );
        for (ps, ctx) in fixpoint.states() {
            let mut rc: Vec<((PState<KCallAddr>, Ctx), KCeskStore)> = run_store_passing(
                mnext::<M, KCallAddr>(ps.clone()),
                ctx.clone(),
                fixpoint.store().clone(),
            );
            let mut direct =
                mnext_direct::<Ctx, KCeskStore>(ps.clone(), ctx.clone(), fixpoint.store().clone());
            rc.sort();
            direct.sort();
            assert_eq!(rc, direct, "carriers diverged at {ps:?}");
        }
    }
}
