//! Syntax of the direct-style λ-calculus.
//!
//! The paper's accompanying implementation replays the monadic refactoring
//! for a direct-style λ-calculus evaluated by a CESK machine; this module is
//! the syntax for that substrate.  Applications and `let`-bindings carry
//! [`Label`]s so that the same k-CFA context machinery applies unchanged.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mai_core::name::{Label, LabelSupply, Name};

/// A variable.
pub type Var = Name;

/// A direct-style λ-term.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable reference.
    Var(Var),
    /// A λ-abstraction `(λ (x) e)`.
    Lam {
        /// The formal parameter.
        param: Var,
        /// The body.
        body: Arc<Term>,
    },
    /// An application `(e₀ e₁)`, labelled as a program point.
    App {
        /// The program-point label of this application.
        label: Label,
        /// The operator.
        func: Arc<Term>,
        /// The operand.
        arg: Arc<Term>,
    },
    /// A `let`-binding `(let (x e₁) e₂)`, labelled as a program point.
    ///
    /// `let` is not strictly necessary (it is sugar for an application) but
    /// keeping it primitive makes the generated workloads and the CESK
    /// machine's behaviour easier to read.
    Let {
        /// The program-point label of this binding.
        label: Label,
        /// The bound variable.
        name: Var,
        /// The bound term.
        rhs: Arc<Term>,
        /// The body.
        body: Arc<Term>,
    },
}

impl Term {
    /// A variable reference.
    pub fn var(name: impl Into<Name>) -> Self {
        Term::Var(name.into())
    }

    /// A λ-abstraction.
    pub fn lam(param: impl Into<Name>, body: Term) -> Self {
        Term::Lam {
            param: param.into(),
            body: Arc::new(body),
        }
    }

    /// Nested λ-abstractions over several parameters (curried).
    pub fn lams(params: &[&str], body: Term) -> Self {
        params.iter().rev().fold(body, |acc, p| Term::lam(*p, acc))
    }

    /// An application with an explicit label.
    pub fn app(label: Label, func: Term, arg: Term) -> Self {
        Term::App {
            label,
            func: Arc::new(func),
            arg: Arc::new(arg),
        }
    }

    /// A `let`-binding with an explicit label.
    pub fn let_in(label: Label, name: impl Into<Name>, rhs: Term, body: Term) -> Self {
        Term::Let {
            label,
            name: name.into(),
            rhs: Arc::new(rhs),
            body: Arc::new(body),
        }
    }

    /// The free variables of this term.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Term::Var(v) => [v.clone()].into_iter().collect(),
            Term::Lam { param, body } => {
                let mut free = body.free_vars();
                free.remove(param);
                free
            }
            Term::App { func, arg, .. } => {
                let mut free = func.free_vars();
                free.extend(arg.free_vars());
                free
            }
            Term::Let {
                name, rhs, body, ..
            } => {
                let mut free = body.free_vars();
                free.remove(name);
                free.extend(rhs.free_vars());
                free
            }
        }
    }

    /// Whether the term is closed.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All application/`let` labels in the term.
    pub fn labels(&self) -> BTreeSet<Label> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut BTreeSet<Label>) {
        match self {
            Term::Var(_) => {}
            Term::Lam { body, .. } => body.collect_labels(out),
            Term::App { label, func, arg } => {
                out.insert(*label);
                func.collect_labels(out);
                arg.collect_labels(out);
            }
            Term::Let {
                label, rhs, body, ..
            } => {
                out.insert(*label);
                rhs.collect_labels(out);
                body.collect_labels(out);
            }
        }
    }

    /// The number of AST nodes — a simple program-size metric.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::Lam { body, .. } => 1 + body.size(),
            Term::App { func, arg, .. } => 1 + func.size() + arg.size(),
            Term::Let { rhs, body, .. } => 1 + rhs.size() + body.size(),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{}", v),
            Term::Lam { param, body } => write!(f, "(λ ({}) {})", param, body),
            Term::App { func, arg, .. } => write!(f, "({} {})", func, arg),
            Term::Let {
                name, rhs, body, ..
            } => write!(f, "(let ({} {}) {})", name, rhs, body),
        }
    }
}

/// A builder that assigns fresh labels to applications and `let`s, for
/// constructing terms programmatically.
#[derive(Debug, Default)]
pub struct TermBuilder {
    labels: LabelSupply,
}

impl TermBuilder {
    /// Creates a fresh builder.
    pub fn new() -> Self {
        TermBuilder {
            labels: LabelSupply::new(),
        }
    }

    /// An application with a fresh label.
    pub fn app(&mut self, func: Term, arg: Term) -> Term {
        Term::app(self.labels.fresh(), func, arg)
    }

    /// Left-nested application of a function to several arguments.
    pub fn apps(&mut self, func: Term, args: Vec<Term>) -> Term {
        args.into_iter().fold(func, |acc, a| self.app(acc, a))
    }

    /// A `let`-binding with a fresh label.
    pub fn let_in(&mut self, name: &str, rhs: Term, body: Term) -> Term {
        Term::let_in(self.labels.fresh(), name, rhs, body)
    }
}

/// The Church numeral `n` as a direct-style term `λf. λx. fⁿ x`.
pub fn church_numeral(builder: &mut TermBuilder, n: usize) -> Term {
    let mut body = Term::var("x");
    for _ in 0..n {
        body = builder.app(Term::var("f"), body);
    }
    Term::lams(&["f", "x"], body)
}

/// Church addition `λm. λn. λf. λx. m f (n f x)`.
pub fn church_add(builder: &mut TermBuilder) -> Term {
    let nfx = {
        let nf = builder.app(Term::var("n"), Term::var("f"));
        builder.app(nf, Term::var("x"))
    };
    let mf = builder.app(Term::var("m"), Term::var("f"));
    let body = builder.app(mf, nfx);
    Term::lams(&["m", "n", "f", "x"], body)
}

/// Church multiplication `λm. λn. λf. m (n f)`.
pub fn church_mul(builder: &mut TermBuilder) -> Term {
    let nf = builder.app(Term::var("n"), Term::var("f"));
    let body = builder.app(Term::var("m"), nf);
    Term::lams(&["m", "n", "f"], body)
}

/// Church exponentiation `λm. λn. n m`.
pub fn church_exp(builder: &mut TermBuilder) -> Term {
    let body = builder.app(Term::var("n"), Term::var("m"));
    Term::lams(&["m", "n"], body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_variables_respect_binders() {
        let t = Term::lam("x", Term::var("x"));
        assert!(t.is_closed());
        let open = Term::lam("x", Term::var("y"));
        assert_eq!(open.free_vars(), [Name::from("y")].into_iter().collect());
    }

    #[test]
    fn let_binds_only_in_the_body() {
        let mut b = TermBuilder::new();
        // (let (x x) x): the rhs reference to x is free.
        let t = b.let_in("x", Term::var("x"), Term::var("x"));
        assert_eq!(t.free_vars(), [Name::from("x")].into_iter().collect());
    }

    #[test]
    fn builders_assign_unique_labels() {
        let mut b = TermBuilder::new();
        let t = b.apps(
            Term::var("f"),
            vec![Term::var("a"), Term::var("b"), Term::var("c")],
        );
        assert_eq!(t.labels().len(), 3);
    }

    #[test]
    fn church_numerals_are_closed_and_grow_linearly() {
        let mut b = TermBuilder::new();
        for n in 0..6 {
            let c = church_numeral(&mut b, n);
            assert!(c.is_closed());
            assert_eq!(c.size(), 3 + 2 * n);
        }
        assert!(church_add(&mut b).is_closed());
        assert!(church_mul(&mut b).is_closed());
        assert!(church_exp(&mut b).is_closed());
    }

    #[test]
    fn display_is_readable() {
        let t = Term::lam("x", Term::var("x"));
        assert_eq!(t.to_string(), "(λ (x) x)");
        let mut b = TermBuilder::new();
        let a = b.app(Term::var("f"), Term::var("y"));
        assert_eq!(a.to_string(), "(f y)");
        let l = b.let_in("z", Term::var("a"), Term::var("z"));
        assert_eq!(l.to_string(), "(let (z a) z)");
    }

    #[test]
    fn lams_curry_in_the_right_order() {
        let t = Term::lams(&["a", "b"], Term::var("a"));
        match t {
            Term::Lam { param, body } => {
                assert_eq!(param, Name::from("a"));
                match body.as_ref() {
                    Term::Lam { param, .. } => assert_eq!(param, &Name::from("b")),
                    _ => panic!("expected nested lambda"),
                }
            }
            _ => panic!("expected lambda"),
        }
    }
}
