//! The monadic CESK machine for the direct-style λ-calculus.
//!
//! This is the second language the paper's implementation replays the
//! monadic refactoring for: a CESK machine whose continuations are
//! *store-allocated* (as in "Abstracting Abstract Machines"), refactored so
//! that the store, the continuation store and time all live behind the
//! analysis monad.  The semantic interface [`CeskInterface`] plays the role
//! `CPSInterface` plays for CPS; the transition function [`mnext`] is again
//! written once and reused by the concrete interpreter and every analysis.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mai_core::addr::Address;
use mai_core::engine::StateRoots;
use mai_core::env::CowMap;
use mai_core::gc::Touches;
use mai_core::monad::MonadFamily;
use mai_core::name::{Label, Name};

use crate::syntax::{Term, Var};

/// An environment: a finite map from variables to addresses, shared
/// copy-on-write — cloning an environment into a closure, frame or
/// successor state is a reference-count bump, and the map is copied only
/// when a shared handle is extended.
pub type Env<A> = CowMap<Var, A>;

/// A reference to a continuation: `None` is the halt continuation, `Some`
/// points at a store-allocated continuation.
pub type KontRef<A> = Option<A>;

/// A denotable value: a closure.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Closure<A> {
    /// The formal parameter.
    pub param: Var,
    /// The body.
    pub body: Arc<Term>,
    /// The captured environment.
    pub env: Env<A>,
}

impl<A: fmt::Debug> fmt::Debug for Closure<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨λ{}. {}, {:?}⟩", self.param, self.body, self.env)
    }
}

impl<A: Address> Touches<A> for Closure<A> {
    fn touches(&self) -> BTreeSet<A> {
        let mut free = self.body.free_vars();
        free.remove(&self.param);
        free.iter()
            .filter_map(|v| self.env.get(v).cloned())
            .collect()
    }
}

/// A continuation frame, store-allocated.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kont<A> {
    /// Evaluate the argument next (the operator has just been evaluated).
    Ar {
        /// The label of the application this frame belongs to.
        site: Label,
        /// The argument term still to be evaluated.
        arg: Arc<Term>,
        /// The environment in which to evaluate it.
        env: Env<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// Apply the already-evaluated operator to the value being produced.
    Fn {
        /// The label of the application this frame belongs to.
        site: Label,
        /// The evaluated operator.
        closure: Closure<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
    /// Bind a `let` variable and continue with the body.
    LetK {
        /// The label of the `let` this frame belongs to.
        site: Label,
        /// The bound variable.
        name: Var,
        /// The body of the `let`.
        body: Arc<Term>,
        /// The environment of the `let`.
        env: Env<A>,
        /// The rest of the continuation.
        next: KontRef<A>,
    },
}

impl<A: fmt::Debug> fmt::Debug for Kont<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kont::Ar { site, arg, .. } => write!(f, "Ar@{}({})", site, arg),
            Kont::Fn { site, closure, .. } => write!(f, "Fn@{}({:?})", site, closure),
            Kont::LetK { site, name, .. } => write!(f, "Let@{}({})", site, name),
        }
    }
}

impl<A: Address> Touches<A> for Kont<A> {
    fn touches(&self) -> BTreeSet<A> {
        match self {
            Kont::Ar { arg, env, next, .. } => {
                let mut out: BTreeSet<A> = arg
                    .free_vars()
                    .iter()
                    .filter_map(|v| env.get(v).cloned())
                    .collect();
                out.extend(next.clone());
                out
            }
            Kont::Fn { closure, next, .. } => {
                let mut out = closure.touches();
                out.extend(next.clone());
                out
            }
            Kont::LetK {
                name,
                body,
                env,
                next,
                ..
            } => {
                let mut free = body.free_vars();
                free.remove(name);
                let mut out: BTreeSet<A> =
                    free.iter().filter_map(|v| env.get(v).cloned()).collect();
                out.extend(next.clone());
                out
            }
        }
    }
}

/// What lives at a store address: a value or a continuation frame.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Storable<A> {
    /// A value.
    Val(Closure<A>),
    /// A continuation.
    Kont(Kont<A>),
}

impl<A> Storable<A> {
    /// The value, if this storable is one.
    pub fn as_val(&self) -> Option<&Closure<A>> {
        match self {
            Storable::Val(v) => Some(v),
            Storable::Kont(_) => None,
        }
    }

    /// The continuation, if this storable is one.
    pub fn as_kont(&self) -> Option<&Kont<A>> {
        match self {
            Storable::Val(_) => None,
            Storable::Kont(k) => Some(k),
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for Storable<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storable::Val(v) => write!(f, "{:?}", v),
            Storable::Kont(k) => write!(f, "{:?}", k),
        }
    }
}

impl<A: Address> Touches<A> for Storable<A> {
    fn touches(&self) -> BTreeSet<A> {
        match self {
            Storable::Val(v) => v.touches(),
            Storable::Kont(k) => k.touches(),
        }
    }
}

/// The control component of a CESK partial state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Control<A> {
    /// Evaluating a term.
    Eval(Arc<Term>),
    /// Returning a value to the continuation.
    Value(Closure<A>),
    /// The machine has halted with this value.
    Halted(Closure<A>),
    /// The machine is stuck on an abstract error (e.g. an unbound
    /// variable), carried as a message.  Error states are final — they
    /// self-loop like `Halted` — so the abstraction of a stuck execution
    /// is an observable analysis fact instead of a silently dropped
    /// branch (an `Either`-style error layer, with the analysis'
    /// power-set of reachable states collecting the set of messages).
    Error(String),
}

impl<A: fmt::Debug> fmt::Debug for Control<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Control::Eval(t) => write!(f, "eval {}", t),
            Control::Value(v) => write!(f, "value {:?}", v),
            Control::Halted(v) => write!(f, "halted {:?}", v),
            Control::Error(msg) => write!(f, "error {}", msg),
        }
    }
}

/// A partial CESK state: control, environment and continuation pointer.
/// The store (value *and* continuation store) and the time live in the
/// monad.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PState<A> {
    /// The control component.
    pub control: Control<A>,
    /// The environment (only meaningful while evaluating).
    pub env: Env<A>,
    /// The continuation pointer.
    pub kont: KontRef<A>,
}

impl<A> PState<A> {
    /// The initial state of a program: evaluate it in the empty environment
    /// with the halt continuation.
    pub fn inject(term: Term) -> Self {
        PState {
            control: Control::Eval(Arc::new(term)),
            env: Env::new(),
            kont: None,
        }
    }

    /// Whether the machine has halted.
    pub fn is_final(&self) -> bool {
        matches!(self.control, Control::Halted(_))
    }

    /// The halt value, if the machine has halted.
    pub fn result(&self) -> Option<&Closure<A>> {
        match &self.control {
            Control::Halted(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the machine is stuck on an abstract error.
    pub fn is_error(&self) -> bool {
        matches!(self.control, Control::Error(_))
    }

    /// The error message, if the machine is stuck.
    pub fn error(&self) -> Option<&str> {
        match &self.control {
            Control::Error(msg) => Some(msg),
            _ => None,
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for PState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?}, {:?}, {:?}⟩", self.control, self.env, self.kont)
    }
}

impl<A: Address> Touches<A> for PState<A> {
    fn touches(&self) -> BTreeSet<A> {
        let mut out: BTreeSet<A> = match &self.control {
            Control::Eval(t) => t
                .free_vars()
                .iter()
                .filter_map(|v| self.env.get(v).cloned())
                .collect(),
            Control::Value(v) | Control::Halted(v) => v.touches(),
            Control::Error(_) => BTreeSet::new(),
        };
        out.extend(self.kont.clone());
        out
    }
}

/// The worklist engine's view of a state's read set: the same roots abstract
/// GC starts from ([`Touches`]), with the address type pinned down so the
/// engine can close them over the shared store.
impl<A: Address> StateRoots for PState<A> {
    type Addr = A;

    fn state_roots(&self) -> BTreeSet<A> {
        self.touches()
    }
}

/// The semantic interface of the direct-style λ-calculus: how the CESK
/// machine interacts with values, continuations, the store and time.
/// The analysis monads and context/store/GC parameters plugged into it are
/// exactly the ones used for CPS — this is the reuse claim of the paper's
/// Figure 3.
pub trait CeskInterface<A: Address>: MonadFamily {
    /// Looks up the value of a variable.
    fn lookup(env: &Env<A>, var: &Var) -> Self::M<Closure<A>>;

    /// Fetches a continuation frame from the store.
    fn kont_at(addr: &A) -> Self::M<Kont<A>>;

    /// Binds a value in the store.
    fn bind_val(addr: A, val: Closure<A>) -> Self::M<()>;

    /// Binds a continuation frame in the store.
    fn bind_kont(addr: A, kont: Kont<A>) -> Self::M<()>;

    /// Allocates an address for a variable binding.
    fn alloc_val(var: &Var) -> Self::M<A>;

    /// Allocates an address for a continuation of the given kind created
    /// at `site`.
    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<A>;

    /// Advances time across the call/binding at `site`.
    fn tick(site: Label) -> Self::M<()>;
}

/// The kind of continuation frame being allocated.  Allocating frames of
/// different kinds at different (synthetic) names keeps, say, the `Ar` and
/// `Fn` frames of one application apart even under a monovariant context —
/// a standard precision refinement of store-allocated continuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KontKind {
    /// An argument-evaluation frame.
    Ar,
    /// A function-application frame.
    Fn,
    /// A `let`-binding frame.
    Let,
}

impl KontKind {
    /// A short tag used in synthetic continuation names.
    pub fn tag(self) -> &'static str {
        match self {
            KontKind::Ar => "ar",
            KontKind::Fn => "fn",
            KontKind::Let => "let",
        }
    }
}

/// The synthetic variable name under which continuations of a given kind
/// allocated at a given program point are stored.
pub fn kont_name(site: Label, kind: KontKind) -> Name {
    // Minted once per transition at every allocation site: served from the
    // global synthetic-name cache, so the format and pool lookup happen
    // only on first sight of a (kind, site) pair.
    Name::synthetic("$kont-", kind.tag(), site.index())
}

/// The monadic transition function of the CESK machine — the analogue of
/// the paper's `mnext` for the direct-style λ-calculus.  Written once
/// against [`CeskInterface`]; every interpreter and analysis of this crate
/// reuses it unchanged.
pub fn mnext<M, A>(ps: PState<A>) -> M::M<PState<A>>
where
    M: CeskInterface<A>,
    A: Address,
{
    match ps.control.clone() {
        Control::Eval(term) => step_eval::<M, A>(term, ps),
        Control::Value(value) => step_value::<M, A>(value, ps),
        Control::Halted(_) | Control::Error(_) => M::pure(ps),
    }
}

fn step_eval<M, A>(term: Arc<Term>, ps: PState<A>) -> M::M<PState<A>>
where
    M: CeskInterface<A>,
    A: Address,
{
    let env = ps.env.clone();
    let kont = ps.kont.clone();
    match term.as_ref().clone() {
        // The environment lives in the state, not the monad, so an
        // unbound variable is detected *before* the monadic lookup — the
        // check (and the error successor it produces) is identical on
        // every carrier, concrete or abstract.
        Term::Var(v) if env.get(&v).is_none() => M::pure(PState {
            control: Control::Error(format!("unbound variable `{}`", v)),
            env: Env::new(),
            kont,
        }),
        Term::Var(v) => M::bind(M::lookup(&env, &v), move |value| {
            M::pure(PState {
                control: Control::Value(value),
                env: Env::new(),
                kont: kont.clone(),
            })
        }),
        Term::Lam { param, body } => M::pure(PState {
            control: Control::Value(Closure {
                param,
                body,
                env: env.clone(),
            }),
            env: Env::new(),
            kont,
        }),
        Term::App { label, func, arg } => {
            let frame = Kont::Ar {
                site: label,
                arg,
                env: env.clone(),
                next: kont,
            };
            M::bind(M::alloc_kont(label, KontKind::Ar), move |addr| {
                let frame = frame.clone();
                let env = env.clone();
                let func = func.clone();
                let keep = addr.clone();
                M::bind(M::bind_kont(addr, frame), move |_| {
                    M::pure(PState {
                        control: Control::Eval(func.clone()),
                        env: env.clone(),
                        kont: Some(keep.clone()),
                    })
                })
            })
        }
        Term::Let {
            label,
            name,
            rhs,
            body,
        } => {
            let frame = Kont::LetK {
                site: label,
                name,
                body,
                env: env.clone(),
                next: kont,
            };
            M::bind(M::alloc_kont(label, KontKind::Let), move |addr| {
                let frame = frame.clone();
                let env = env.clone();
                let rhs = rhs.clone();
                let keep = addr.clone();
                M::bind(M::bind_kont(addr, frame), move |_| {
                    M::pure(PState {
                        control: Control::Eval(rhs.clone()),
                        env: env.clone(),
                        kont: Some(keep.clone()),
                    })
                })
            })
        }
    }
}

fn step_value<M, A>(value: Closure<A>, ps: PState<A>) -> M::M<PState<A>>
where
    M: CeskInterface<A>,
    A: Address,
{
    match ps.kont.clone() {
        None => M::pure(PState {
            control: Control::Halted(value),
            env: Env::new(),
            kont: None,
        }),
        Some(addr) => M::bind(M::kont_at(&addr), move |frame| {
            let value = value.clone();
            match frame {
                Kont::Ar {
                    site,
                    arg,
                    env,
                    next,
                } => {
                    let fn_frame = Kont::Fn {
                        site,
                        closure: value,
                        next,
                    };
                    M::bind(M::alloc_kont(site, KontKind::Fn), move |kaddr| {
                        let fn_frame = fn_frame.clone();
                        let arg = arg.clone();
                        let env = env.clone();
                        let keep = kaddr.clone();
                        M::bind(M::bind_kont(kaddr, fn_frame), move |_| {
                            M::pure(PState {
                                control: Control::Eval(arg.clone()),
                                env: env.clone(),
                                kont: Some(keep.clone()),
                            })
                        })
                    })
                }
                Kont::Fn {
                    site,
                    closure,
                    next,
                } => {
                    let param = closure.param.clone();
                    let body = closure.body.clone();
                    let captured = closure.env.clone();
                    M::bind(M::tick(site), move |_| {
                        let param = param.clone();
                        let body = body.clone();
                        let captured = captured.clone();
                        let value = value.clone();
                        let next = next.clone();
                        M::bind(M::alloc_val(&param), move |vaddr| {
                            let mut env = captured.clone();
                            env.insert(param.clone(), vaddr.clone());
                            let body = body.clone();
                            let next = next.clone();
                            M::bind(M::bind_val(vaddr, value.clone()), move |_| {
                                M::pure(PState {
                                    control: Control::Eval(body.clone()),
                                    env: env.clone(),
                                    kont: next.clone(),
                                })
                            })
                        })
                    })
                }
                Kont::LetK {
                    site,
                    name,
                    body,
                    env,
                    next,
                } => M::bind(M::tick(site), move |_| {
                    let name = name.clone();
                    let body = body.clone();
                    let outer = env.clone();
                    let value = value.clone();
                    let next = next.clone();
                    M::bind(M::alloc_val(&name), move |vaddr| {
                        let mut env = outer.clone();
                        env.insert(name.clone(), vaddr.clone());
                        let body = body.clone();
                        let next = next.clone();
                        M::bind(M::bind_val(vaddr, value.clone()), move |_| {
                            M::pure(PState {
                                control: Control::Eval(body.clone()),
                                env: env.clone(),
                                kont: next.clone(),
                            })
                        })
                    })
                }),
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mai_core::name::Label;

    #[test]
    fn inject_starts_at_eval_with_halt_continuation() {
        let ps: PState<u32> = PState::inject(Term::lam("x", Term::var("x")));
        assert!(matches!(ps.control, Control::Eval(_)));
        assert!(ps.kont.is_none());
        assert!(!ps.is_final());
        assert!(ps.result().is_none());
    }

    #[test]
    fn closure_touches_free_variables_only() {
        let body = Term::app(Label::new(1), Term::var("f"), Term::var("x"));
        let clo: Closure<u32> = Closure {
            param: Name::from("x"),
            body: Arc::new(body),
            env: [(Name::from("f"), 7u32), (Name::from("x"), 8)]
                .into_iter()
                .collect(),
        };
        assert_eq!(clo.touches(), [7u32].into_iter().collect());
    }

    #[test]
    fn kont_touches_include_the_rest_of_the_stack() {
        let clo: Closure<u32> = Closure {
            param: Name::from("x"),
            body: Arc::new(Term::var("x")),
            env: Env::new(),
        };
        let k: Kont<u32> = Kont::Fn {
            site: Label::new(2),
            closure: clo,
            next: Some(42),
        };
        assert!(Touches::<u32>::touches(&k).contains(&42));
    }

    #[test]
    fn state_touches_include_the_continuation_pointer() {
        let ps: PState<u32> = PState {
            control: Control::Eval(Arc::new(Term::var("y"))),
            env: [(Name::from("y"), 3u32)].into_iter().collect(),
            kont: Some(9),
        };
        assert_eq!(ps.touches(), [3u32, 9].into_iter().collect());
    }

    #[test]
    fn storable_projections_are_exclusive() {
        let clo: Closure<u32> = Closure {
            param: Name::from("x"),
            body: Arc::new(Term::var("x")),
            env: Env::new(),
        };
        let v = Storable::Val(clo.clone());
        let k = Storable::Kont(Kont::Fn {
            site: Label::new(1),
            closure: clo,
            next: None,
        });
        assert!(v.as_val().is_some() && v.as_kont().is_none());
        assert!(k.as_kont().is_some() && k.as_val().is_none());
    }

    #[test]
    fn kont_names_are_per_site_and_per_kind() {
        assert_ne!(
            kont_name(Label::new(1), KontKind::Ar),
            kont_name(Label::new(2), KontKind::Ar)
        );
        assert_ne!(
            kont_name(Label::new(1), KontKind::Ar),
            kont_name(Label::new(1), KontKind::Fn)
        );
        assert_eq!(
            kont_name(Label::new(3), KontKind::Let),
            kont_name(Label::new(3), KontKind::Let)
        );
    }
}
