//! Abstract interpretation of the direct-style λ-calculus.
//!
//! The implementation of [`CeskInterface`] for the `StorePassing` monad is
//! assembled from exactly the same language-independent parameters used for
//! CPS (contexts, stores, counting stores, garbage collection, per-state or
//! shared-store domains) — this module is the concrete evidence for the
//! paper's reuse claim (Figure 3 and §1.2).

use std::collections::BTreeSet;

use mai_core::addr::{Context, NamedAddress};
use mai_core::collect::{run_analysis, with_gc, Collecting, PerStateDomain, SharedStoreDomain};
use mai_core::engine::{
    explore_frontier_ladder, explore_worklist_direct_stats, explore_worklist_direct_traced_stats,
    explore_worklist_elastic_stats, explore_worklist_elastic_traced_stats,
    explore_worklist_parallel_stats, explore_worklist_parallel_traced_stats,
    explore_worklist_rescan_stats, explore_worklist_stats, explore_worklist_structural_stats,
    with_state_gc, Budget, DirectCollecting, EngineError, EngineStats, FrontierCollecting,
    LadderReport, Outcome, ParallelCollecting, ParallelConfig, SharedResumeSeed, SolveFrom,
};
use mai_core::gc::Touches;
use mai_core::gc::{reachable, GcStrategy};
use mai_core::monad::{
    gets_nd_set, MonadFamily, MonadState, MonadTrans, StateT, StorePassing, Value, VecM,
};
use mai_core::name::{Label, Name};
use mai_core::store::{BasicStore, CountingStore, StoreLike};
use mai_core::{KCallAddr, KCallCtx, MonoAddr, MonoCtx};

use crate::machine::{
    kont_name, mnext, CeskInterface, Closure, Env, Kont, KontKind, PState, Storable,
};
use crate::syntax::{Term, Var};

impl<C, S> CeskInterface<C::Addr> for StorePassing<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
{
    fn lookup(env: &Env<C::Addr>, var: &Var) -> Self::M<Closure<C::Addr>> {
        let addr = env.get(var).cloned();
        Self::lift(gets_nd_set::<StateT<S, VecM>, S, Closure<C::Addr>, _>(
            move |store| match &addr {
                Some(a) => store
                    .fetch(a)
                    .iter()
                    .filter_map(Storable::as_val)
                    .cloned()
                    .collect(),
                None => BTreeSet::new(),
            },
        ))
    }

    fn kont_at(addr: &C::Addr) -> Self::M<Kont<C::Addr>> {
        let addr = addr.clone();
        Self::lift(gets_nd_set::<StateT<S, VecM>, S, Kont<C::Addr>, _>(
            move |store| {
                store
                    .fetch(&addr)
                    .iter()
                    .filter_map(Storable::as_kont)
                    .cloned()
                    .collect()
            },
        ))
    }

    fn bind_val(addr: C::Addr, val: Closure<C::Addr>) -> Self::M<()> {
        Self::lift(<StateT<S, VecM> as MonadState<S>>::modify(move |store| {
            store.bind(
                addr.clone(),
                [Storable::Val(val.clone())].into_iter().collect(),
            )
        }))
    }

    fn bind_kont(addr: C::Addr, kont: Kont<C::Addr>) -> Self::M<()> {
        Self::lift(<StateT<S, VecM> as MonadState<S>>::modify(move |store| {
            store.bind(
                addr.clone(),
                [Storable::Kont(kont.clone())].into_iter().collect(),
            )
        }))
    }

    fn alloc_val(var: &Var) -> Self::M<C::Addr> {
        let var = var.clone();
        <Self as MonadState<C>>::gets(move |ctx| ctx.valloc(&var))
    }

    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<C::Addr> {
        let name = kont_name(site, kind);
        <Self as MonadState<C>>::gets(move |ctx| ctx.valloc(&name))
    }

    fn tick(site: Label) -> Self::M<()> {
        <Self as MonadState<C>>::modify(move |ctx| ctx.advance(site))
    }
}

/// The abstract garbage collector for the CESK machine: restricts the store
/// (values *and* continuations) to the addresses reachable from the current
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CeskGc;

impl<C, S> GcStrategy<StorePassing<C, S>, PState<C::Addr>> for CeskGc
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
{
    fn collect(&self, ps: &PState<C::Addr>) -> <StorePassing<C, S> as MonadFamily>::M<()> {
        let roots = ps.touches();
        <StorePassing<C, S> as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |store: S| {
                let live = reachable(roots.clone(), &store);
                store.filter_store(|a| live.contains(a))
            },
        ))
    }
}

/// Runs the CESK analysis with an arbitrary context, store and collecting
/// domain.
pub fn analyse<C, S, Fp>(term: &Term) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(term.clone()),
    )
}

/// Like [`analyse`], with abstract garbage collection after every step.
pub fn analyse_with_gc<C, S, Fp>(term: &Term) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CeskGc,
        ),
        PState::inject(term.clone()),
    )
}

/// Like [`analyse`], but solved by the frontier-driven worklist engine
/// instead of naive Kleene iteration, additionally reporting
/// [`EngineStats`].  Computes exactly the same fixpoint.
pub fn analyse_worklist<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_with_gc`], but solved by the worklist engine.
pub fn analyse_with_gc_worklist<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CeskGc,
        ),
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_worklist`], but evaluated on the **direct-style step
/// carrier** ([`crate::direct::mnext_direct`]): the same CESK semantics
/// with `bind` as plain function composition — no `Rc<dyn Fn>` per bind.
/// Identical fixpoint; the `Rc` carrier remains the oracle.
pub fn analyse_worklist_direct<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_direct_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
    )
}

/// [`analyse_worklist_direct`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve:
/// per-round phase timings, store-join traffic and hot-state attribution.
/// Identical fixpoint and identical deterministic work counters at every
/// sink.
pub fn analyse_worklist_direct_traced<C, S, Fp, T>(term: &Term, sink: &mut T) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_direct_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        sink,
    )
}

/// Like [`analyse_with_gc_worklist`], but on the direct-style carrier
/// (per-branch store restriction via
/// [`with_state_gc`]).
pub fn analyse_with_gc_worklist_direct<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_direct_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_worklist_direct`], but solved by the **sharded parallel
/// driver** ([`mai_core::engine::parallel`]) on `threads` worker threads:
/// the frontier is sharded across workers (work-stealing by `StateId`
/// ranges), each worker steps against a snapshot of the global store, and
/// per-shard deltas are joined at a sync barrier each round.  Byte-identical
/// fixpoint — and identical deterministic work counters — to
/// [`analyse_worklist_direct`] at every thread count; the sequential direct
/// engine remains the determinism oracle.
pub fn analyse_worklist_parallel<C, S, Fp>(term: &Term, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_parallel_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        threads,
    )
}

/// [`analyse_worklist_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve:
/// per-round phase timings plus one
/// [`WorkerSpan`](mai_core::telemetry::WorkerSpan) per worker per round
/// and a [`StealTrace`](mai_core::telemetry::StealTrace) per stolen chunk.
pub fn analyse_worklist_parallel_traced<C, S, Fp, T>(
    term: &Term,
    threads: usize,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_parallel_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        threads,
        sink,
    )
}

/// Like [`analyse_with_gc_worklist_direct`], but solved by the sharded
/// parallel driver (abstract GC as the per-branch [`with_state_gc`] store
/// restriction, inside each worker).
pub fn analyse_with_gc_parallel<C, S, Fp>(term: &Term, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_parallel_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(term.clone()),
        threads,
    )
}

/// Like [`analyse_worklist_parallel`], but solved by the **barrier-elastic
/// driver** ([`mai_core::engine::parallel::elastic`]): workers advance
/// private sub-frontiers for up to [`ParallelConfig::epochs`] epochs
/// between barriers, merging per-shard store deltas lazily.  The fixpoint
/// stays byte-identical to [`analyse_worklist_direct`]; the *work
/// counters* become timing-dependent (`epochs = 1` delegates to the
/// barrier engine, deterministic counters and all).
pub fn analyse_worklist_elastic<C, S, Fp>(term: &Term, config: ParallelConfig) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_elastic_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        config,
    )
}

/// [`analyse_worklist_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker, per-epoch and per-merge profiles).
pub fn analyse_worklist_elastic_traced<C, S, Fp, T>(
    term: &Term,
    config: ParallelConfig,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_elastic_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        config,
        sink,
    )
}

/// Like [`analyse_with_gc_parallel`], but on the barrier-elastic driver.
pub fn analyse_with_gc_elastic<C, S, Fp>(term: &Term, config: ParallelConfig) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_elastic_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(term.clone()),
        config,
    )
}

/// Like [`analyse_worklist_direct`], but *governed*: the solve consults
/// `budget` at every round boundary and returns an [`Outcome`] — either the
/// complete fixpoint or an `Exhausted` partial whose resume seed reaches
/// the identical fixpoint when handed back to
/// [`analyse_resume_governed`].  With `Budget::unlimited()` the result and
/// every deterministic work counter are byte-identical to
/// [`analyse_worklist_direct`] (the ungoverned entry point *is* this one,
/// applied to the unlimited budget).
pub fn analyse_worklist_governed<C, S, Fp>(
    term: &Term,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(term.clone())),
        budget,
    )
}

/// Resumes an exhausted governed solve from its carried seed.  Monotone
/// accumulation guarantees the resumed solve reaches exactly the fixpoint
/// the one-shot solve would have.
pub fn analyse_resume_governed<C, S, Fp>(
    seed: Fp::Seed,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Resume(seed),
        budget,
    )
}

/// [`analyse_worklist_parallel`], governed: budget and cancellation are
/// checked at every barrier, and a panicked worker surfaces as a clean
/// [`EngineError`] instead of deadlocking the pool.
pub fn analyse_worklist_parallel_governed<C, S, Fp>(
    term: &Term,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_parallel_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(term.clone())),
        threads,
        budget,
    )
}

/// [`analyse_worklist_elastic`], governed: budget and cancellation are
/// checked at every epoch boundary (cancel latency is at most one epoch).
pub fn analyse_worklist_elastic_governed<C, S, Fp>(
    term: &Term,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_elastic_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(term.clone())),
        config,
        budget,
    )
}

/// [`analyse_worklist_elastic`] behind the full degradation ladder:
/// elastic → barrier → sequential direct.  A faulted parallel rung is
/// reported in the [`LadderReport`]; the returned fixpoint is byte-identical
/// to [`analyse_worklist_direct`] no matter which rung completed.
pub fn analyse_worklist_ladder<C, S>(
    term: &Term,
    config: ParallelConfig,
    budget: &Budget,
) -> (LadderOutcome<C, S>, EngineStats, LadderReport)
where
    C: Context + std::hash::Hash,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>>
        + mai_core::store::StoreDelta<C::Addr>
        + mai_core::lattice::WidenLattice
        + Value,
{
    explore_frontier_ladder(
        &crate::direct::mnext_direct::<C, S>,
        PState::inject(term.clone()),
        config,
        budget,
    )
}

/// The outcome type of a ladder solve over the shared-store CESK domain.
pub type LadderOutcome<C, S> = Outcome<
    SharedStoreDomain<PState<<C as Context>::Addr>, C, S>,
    SharedResumeSeed<PState<<C as Context>::Addr>, C, S>,
>;

/// Like [`analyse_worklist`], but solved by the PR-2 *structural-key*
/// incremental engine (states as `BTreeMap` keys instead of interned ids) —
/// a differential-testing oracle and the E10 benchmark baseline.
pub fn analyse_worklist_structural<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_with_gc_worklist`], but solved by the structural-key
/// engine.
pub fn analyse_with_gc_worklist_structural<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CeskGc,
        ),
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_worklist`], but solved by the PR-1 *rescanning* worklist
/// engine (full contribution re-join per round) — the differential-testing
/// oracle and E9 benchmark baseline.
pub fn analyse_worklist_rescan<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(term.clone()),
    )
}

/// Like [`analyse_with_gc_worklist`], but solved by the rescanning engine.
pub fn analyse_with_gc_worklist_rescan<C, S, Fp>(term: &Term) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Storable<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CeskGc,
        ),
        PState::inject(term.clone()),
    )
}

/// The plain store of the k-CFA CESK family.
pub type KCeskStore = BasicStore<KCallAddr, Storable<KCallAddr>>;

/// The counting store of the k-CFA CESK family.
pub type KCeskCountingStore = CountingStore<KCallAddr, Storable<KCallAddr>>;

/// The shared-store k-CFA analysis domain for the CESK machine.
pub type KCeskShared<const K: usize> =
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCeskStore>;

/// The per-state-store ("heap cloning") k-CFA analysis domain for the CESK
/// machine.
pub type KCeskPerState<const K: usize> = PerStateDomain<PState<KCallAddr>, KCallCtx<K>, KCeskStore>;

/// The shared-store monovariant analysis domain for the CESK machine.
pub type MonoCeskShared =
    SharedStoreDomain<PState<MonoAddr>, MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>>;

/// k-CFA over the CESK machine with a shared (widened) store.
pub fn analyse_kcfa_shared<const K: usize>(term: &Term) -> KCeskShared<K> {
    analyse::<KCallCtx<K>, KCeskStore, _>(term)
}

/// k-CFA over the CESK machine with per-state stores.
pub fn analyse_kcfa<const K: usize>(term: &Term) -> KCeskPerState<K> {
    analyse::<KCallCtx<K>, KCeskStore, _>(term)
}

/// k-CFA over the CESK machine with a shared *counting* store.
pub fn analyse_kcfa_with_count<const K: usize>(
    term: &Term,
) -> SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCeskCountingStore> {
    analyse::<KCallCtx<K>, KCeskCountingStore, _>(term)
}

/// k-CFA over the CESK machine with a shared store and abstract GC.
pub fn analyse_kcfa_shared_gc<const K: usize>(term: &Term) -> KCeskShared<K> {
    analyse_with_gc::<KCallCtx<K>, KCeskStore, _>(term)
}

/// Monovariant (0CFA) analysis of the CESK machine with a shared store.
pub fn analyse_mono(term: &Term) -> MonoCeskShared {
    analyse::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(term)
}

/// [`analyse_kcfa_shared`] solved by the worklist engine.
pub fn analyse_kcfa_shared_worklist<const K: usize>(term: &Term) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_kcfa`] solved by the worklist engine (per-state stores).
pub fn analyse_kcfa_worklist<const K: usize>(term: &Term) -> (KCeskPerState<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_kcfa_with_count`] solved by the worklist engine.
pub fn analyse_kcfa_with_count_worklist<const K: usize>(
    term: &Term,
) -> (
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCeskCountingStore>,
    EngineStats,
) {
    analyse_worklist::<KCallCtx<K>, KCeskCountingStore, _>(term)
}

/// [`analyse_kcfa_shared_gc`] solved by the worklist engine.
pub fn analyse_kcfa_shared_gc_worklist<const K: usize>(
    term: &Term,
) -> (KCeskShared<K>, EngineStats) {
    analyse_with_gc_worklist::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_kcfa_shared`] solved by the PR-1 rescanning worklist engine.
pub fn analyse_kcfa_shared_rescan<const K: usize>(term: &Term) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist_rescan::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_kcfa_shared`] solved by the PR-2 structural-key incremental
/// engine — the E10 benchmark baseline.
pub fn analyse_kcfa_shared_structural<const K: usize>(
    term: &Term,
) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist_structural::<KCallCtx<K>, KCeskStore, _>(term)
}

/// How many distinct environments the states of a shared-store CESK
/// fixpoint carry (top-level state environments; closures and frames share
/// them through the copy-on-write representation), measured with an
/// [`EnvId`](mai_core::intern::EnvId) interner — the language-boundary half
/// of [`EngineStats::distinct_envs`].
pub fn distinct_env_count<A, G, S>(result: &SharedStoreDomain<PState<A>, G, S>) -> usize
where
    A: mai_core::addr::Address + std::hash::Hash,
    G: Ord + Clone,
    S: mai_core::lattice::Lattice,
{
    mai_core::intern::distinct_count(result.states().iter().map(|(ps, _)| ps.env.clone()))
}

/// [`analyse_mono`] solved by the worklist engine.
pub fn analyse_mono_worklist(term: &Term) -> (MonoCeskShared, EngineStats) {
    analyse_worklist::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(term)
}

/// [`analyse_kcfa_shared_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_shared_direct<const K: usize>(term: &Term) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist_direct::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_kcfa_shared_direct`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve.
pub fn analyse_kcfa_shared_direct_traced<const K: usize, T>(
    term: &Term,
    sink: &mut T,
) -> (KCeskShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_direct_traced::<KCallCtx<K>, KCeskStore, _, T>(term, sink)
}

/// [`analyse_kcfa_shared_gc_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_shared_gc_direct<const K: usize>(term: &Term) -> (KCeskShared<K>, EngineStats) {
    analyse_with_gc_worklist_direct::<KCallCtx<K>, KCeskStore, _>(term)
}

/// [`analyse_mono_worklist`] on the direct-style carrier.
pub fn analyse_mono_direct(term: &Term) -> (MonoCeskShared, EngineStats) {
    analyse_worklist_direct::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(term)
}

/// [`analyse_kcfa_with_count_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_with_count_direct<const K: usize>(
    term: &Term,
) -> (
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCeskCountingStore>,
    EngineStats,
) {
    analyse_worklist_direct::<KCallCtx<K>, KCeskCountingStore, _>(term)
}

/// [`analyse_kcfa_shared_direct`] solved by the sharded parallel driver.
pub fn analyse_kcfa_shared_parallel<const K: usize>(
    term: &Term,
    threads: usize,
) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist_parallel::<KCallCtx<K>, KCeskStore, _>(term, threads)
}

/// [`analyse_kcfa_shared_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker profiles).
pub fn analyse_kcfa_shared_parallel_traced<const K: usize, T>(
    term: &Term,
    threads: usize,
    sink: &mut T,
) -> (KCeskShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_parallel_traced::<KCallCtx<K>, KCeskStore, _, T>(term, threads, sink)
}

/// [`analyse_kcfa_shared_gc_direct`] solved by the sharded parallel driver.
pub fn analyse_kcfa_shared_gc_parallel<const K: usize>(
    term: &Term,
    threads: usize,
) -> (KCeskShared<K>, EngineStats) {
    analyse_with_gc_parallel::<KCallCtx<K>, KCeskStore, _>(term, threads)
}

/// [`analyse_mono_direct`] solved by the sharded parallel driver.
pub fn analyse_mono_parallel(term: &Term, threads: usize) -> (MonoCeskShared, EngineStats) {
    analyse_worklist_parallel::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(term, threads)
}

/// [`analyse_kcfa_with_count_direct`] solved by the sharded parallel
/// driver.
pub fn analyse_kcfa_with_count_parallel<const K: usize>(
    term: &Term,
    threads: usize,
) -> (
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCeskCountingStore>,
    EngineStats,
) {
    analyse_worklist_parallel::<KCallCtx<K>, KCeskCountingStore, _>(term, threads)
}

/// [`analyse_kcfa_shared_direct`] solved by the barrier-elastic driver.
pub fn analyse_kcfa_shared_elastic<const K: usize>(
    term: &Term,
    config: ParallelConfig,
) -> (KCeskShared<K>, EngineStats) {
    analyse_worklist_elastic::<KCallCtx<K>, KCeskStore, _>(term, config)
}

/// [`analyse_kcfa_shared_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve.
pub fn analyse_kcfa_shared_elastic_traced<const K: usize, T>(
    term: &Term,
    config: ParallelConfig,
    sink: &mut T,
) -> (KCeskShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_elastic_traced::<KCallCtx<K>, KCeskStore, _, T>(term, config, sink)
}

/// [`analyse_kcfa_shared_gc_direct`] solved by the barrier-elastic driver.
pub fn analyse_kcfa_shared_gc_elastic<const K: usize>(
    term: &Term,
    config: ParallelConfig,
) -> (KCeskShared<K>, EngineStats) {
    analyse_with_gc_elastic::<KCallCtx<K>, KCeskStore, _>(term, config)
}

/// [`analyse_mono_direct`] solved by the barrier-elastic driver.
pub fn analyse_mono_elastic(term: &Term, config: ParallelConfig) -> (MonoCeskShared, EngineStats) {
    analyse_worklist_elastic::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(term, config)
}

/// The resume seed of a governed shared-store k-CFA solve.
pub type KCeskSeed<const K: usize> = SharedResumeSeed<PState<KCallAddr>, KCallCtx<K>, KCeskStore>;

/// [`analyse_kcfa_shared_direct`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_governed<const K: usize>(
    term: &Term,
    budget: &Budget,
) -> (Outcome<KCeskShared<K>, KCeskSeed<K>>, EngineStats) {
    analyse_worklist_governed::<KCallCtx<K>, KCeskStore, _>(term, budget)
}

/// Resumes an exhausted [`analyse_kcfa_shared_governed`] solve.
pub fn analyse_kcfa_shared_resume<const K: usize>(
    seed: KCeskSeed<K>,
    budget: &Budget,
) -> (Outcome<KCeskShared<K>, KCeskSeed<K>>, EngineStats) {
    analyse_resume_governed::<KCallCtx<K>, KCeskStore, _>(seed, budget)
}

/// [`analyse_kcfa_shared_parallel`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_parallel_governed<const K: usize>(
    term: &Term,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<KCeskShared<K>, KCeskSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_parallel_governed::<KCallCtx<K>, KCeskStore, _>(term, threads, budget)
}

/// [`analyse_kcfa_shared_elastic`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_elastic_governed<const K: usize>(
    term: &Term,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<KCeskShared<K>, KCeskSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_elastic_governed::<KCallCtx<K>, KCeskStore, _>(term, config, budget)
}

/// [`analyse_kcfa_shared_elastic`] behind the degradation ladder
/// (elastic → barrier → sequential direct).
pub fn analyse_kcfa_shared_ladder<const K: usize>(
    term: &Term,
    config: ParallelConfig,
    budget: &Budget,
) -> (
    Outcome<KCeskShared<K>, KCeskSeed<K>>,
    EngineStats,
    LadderReport,
) {
    analyse_worklist_ladder::<KCallCtx<K>, KCeskStore>(term, config, budget)
}

/// The abstract errors observable in a set of reachable states: the
/// power-set of error messages carried by stuck states.  This is the
/// analysis-level output of the error layer threaded through
/// [`mnext`] — a program point that abstracts to a stuck configuration
/// (an unbound variable, say) shows up here instead of vanishing as a
/// silently dropped branch.
pub fn abstract_errors<'a, A, I>(states: I) -> BTreeSet<String>
where
    A: 'a,
    I: IntoIterator<Item = &'a PState<A>>,
{
    states
        .into_iter()
        .filter_map(|ps| ps.error().map(str::to_owned))
        .collect()
}

/// Which λ-abstraction parameters each variable may be bound to, extracted
/// from a CESK store (continuation entries are ignored).
pub fn flow_map_of_store<A, S>(store: &S) -> std::collections::BTreeMap<Name, BTreeSet<Var>>
where
    A: NamedAddress,
    S: StoreLike<A, D = BTreeSet<Storable<A>>>,
{
    let mut flows: std::collections::BTreeMap<Name, BTreeSet<Var>> =
        std::collections::BTreeMap::new();
    for addr in store.addresses() {
        for storable in store.fetch(&addr) {
            if let Storable::Val(clo) = storable {
                flows
                    .entry(addr.variable().clone())
                    .or_default()
                    .insert(clo.param.clone());
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::TermBuilder;

    /// `(λx. x) (λy. y)` — the identity applied to the identity.
    fn identity_app() -> Term {
        let mut b = TermBuilder::new();
        b.app(
            Term::lam("x", Term::var("x")),
            Term::lam("y", Term::var("y")),
        )
    }

    /// `let f = λx. x in (f (λa. a), then f (λb. b))` — encoded with
    /// applications so that f is called at two distinct sites.
    fn two_sites() -> Term {
        let mut b = TermBuilder::new();
        let first = b.app(Term::var("f"), Term::lam("a", Term::var("a")));
        let second = b.app(Term::var("f"), Term::lam("b", Term::var("b")));
        let use_both = b.app(first, second);
        b.let_in("f", Term::lam("x", Term::var("x")), use_both)
    }

    #[test]
    fn identity_application_halts_abstractly() {
        let t = identity_app();
        let mono = analyse_mono(&t);
        assert!(mono.distinct_states().iter().any(PState::is_final));
        let one = analyse_kcfa_shared::<1>(&t);
        assert!(one.distinct_states().iter().any(PState::is_final));
        let counted = analyse_kcfa_with_count::<1>(&t);
        assert!(counted.distinct_states().iter().any(PState::is_final));
        let gced = analyse_kcfa_shared_gc::<1>(&t);
        assert!(gced.distinct_states().iter().any(PState::is_final));
    }

    #[test]
    fn the_result_of_the_identity_application_is_the_argument() {
        let t = identity_app();
        let result = analyse_mono(&t);
        let halts: BTreeSet<Var> = result
            .distinct_states()
            .iter()
            .filter_map(|ps| ps.result().map(|c| c.param.clone()))
            .collect();
        assert_eq!(halts, [Name::from("y")].into_iter().collect());
    }

    #[test]
    fn monovariant_flows_conflate_the_two_sites() {
        let t = two_sites();
        let mono = analyse_mono(&t);
        let flows = flow_map_of_store(mono.store());
        assert_eq!(
            flows[&Name::from("x")],
            [Name::from("a"), Name::from("b")].into_iter().collect()
        );
    }

    #[test]
    fn one_cfa_keeps_the_two_sites_apart() {
        let t = two_sites();
        let one = analyse_kcfa_shared::<1>(&t);
        // Every (x, call-string) binding is a singleton under 1-CFA.
        let store = one.store();
        for addr in store.addresses() {
            if addr.variable() == &Name::from("x") {
                let vals: BTreeSet<_> = store
                    .fetch(&addr)
                    .iter()
                    .filter_map(Storable::as_val)
                    .map(|c| c.param.clone())
                    .collect();
                assert_eq!(vals.len(), 1, "1-CFA conflated bindings of x");
            }
        }
    }

    #[test]
    fn per_state_and_shared_store_agree_on_reachable_states() {
        let t = identity_app();
        let cloned = analyse_kcfa::<1>(&t);
        let shared = analyse_kcfa_shared::<1>(&t);
        for ps in cloned.distinct_states() {
            assert!(shared.distinct_states().contains(&ps));
        }
    }

    #[test]
    fn unbound_variables_surface_as_abstract_errors() {
        let mut b = TermBuilder::new();
        let t = b.app(Term::lam("x", Term::var("x")), Term::var("free"));
        let mono = analyse_mono(&t);
        let states = mono.distinct_states();
        let errors = abstract_errors(states.iter());
        assert!(
            errors.iter().any(|m| m.contains("unbound variable `free`")),
            "expected an unbound-variable error, got {errors:?}"
        );
        // The stuck branch is the only way this program can end: no
        // halted state is reachable.
        assert!(!states.iter().any(PState::is_final));

        // A closed program reports no abstract errors.
        let closed = analyse_mono(&identity_app());
        assert!(abstract_errors(closed.distinct_states().iter()).is_empty());
    }

    #[test]
    fn gc_only_shrinks_the_store() {
        let t = two_sites();
        let plain = analyse_mono(&t);
        let gced: MonoCeskShared =
            analyse_with_gc::<MonoCtx, BasicStore<MonoAddr, Storable<MonoAddr>>, _>(&t);
        assert!(gced.store().fact_count() <= plain.store().fact_count());
        assert!(gced.distinct_states().iter().any(PState::is_final));
    }
}
