//! The concrete CESK interpreter, recovered from the monadic machine by
//! choosing a deterministic state monad over a real heap (the analogue of
//! paper §4 for the direct-style λ-calculus).

use std::collections::BTreeMap;
use std::fmt;

use mai_core::engine::Budget;
use mai_core::monad::{run_state, MonadFamily, MonadState, StateM};
use mai_core::name::{Label, Name};

use crate::machine::{kont_name, mnext, CeskInterface, Closure, Env, Kont, KontKind, PState};
use crate::syntax::{Term, Var};

/// A concrete heap address: a name (variable or synthetic continuation
/// name) paired with a globally fresh index.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapAddr {
    /// The name the cell was allocated for.
    pub name: Name,
    /// The globally unique allocation index.
    pub index: u64,
}

impl fmt::Debug for HeapAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}#{}", self.name, self.index)
    }
}

/// The concrete CESK heap: separate value and continuation cells plus a
/// fresh-address counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Heap {
    next: u64,
    values: BTreeMap<HeapAddr, Closure<HeapAddr>>,
    konts: BTreeMap<HeapAddr, Kont<HeapAddr>>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// The number of cells ever allocated.
    pub fn allocation_count(&self) -> u64 {
        self.next
    }

    /// How many cells were allocated for the given variable name.
    pub fn allocations_for(&self, name: &Name) -> usize {
        self.values.keys().filter(|a| &a.name == name).count()
    }
}

impl CeskInterface<HeapAddr> for StateM<Heap> {
    fn lookup(env: &Env<HeapAddr>, var: &Var) -> Self::M<Closure<HeapAddr>> {
        let addr = env
            .get(var)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable `{}` in concrete execution", var));
        <Self as MonadState<Heap>>::gets(move |heap| {
            heap.values
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| panic!("value address {:?} read before write", addr))
        })
    }

    fn kont_at(addr: &HeapAddr) -> Self::M<Kont<HeapAddr>> {
        let addr = addr.clone();
        <Self as MonadState<Heap>>::gets(move |heap| {
            heap.konts
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| panic!("continuation address {:?} read before write", addr))
        })
    }

    fn bind_val(addr: HeapAddr, val: Closure<HeapAddr>) -> Self::M<()> {
        <Self as MonadState<Heap>>::modify(move |mut heap| {
            heap.values.insert(addr.clone(), val.clone());
            heap
        })
    }

    fn bind_kont(addr: HeapAddr, kont: Kont<HeapAddr>) -> Self::M<()> {
        <Self as MonadState<Heap>>::modify(move |mut heap| {
            heap.konts.insert(addr.clone(), kont.clone());
            heap
        })
    }

    fn alloc_val(var: &Var) -> Self::M<HeapAddr> {
        fresh(var.clone())
    }

    fn alloc_kont(site: Label, kind: KontKind) -> Self::M<HeapAddr> {
        fresh(kont_name(site, kind))
    }

    fn tick(_site: Label) -> Self::M<()> {
        Self::pure(())
    }
}

fn fresh(name: Name) -> <StateM<Heap> as MonadFamily>::M<HeapAddr> {
    StateM::<Heap>::bind(<StateM<Heap> as MonadState<Heap>>::get(), move |heap| {
        let addr = HeapAddr {
            name: name.clone(),
            index: heap.next,
        };
        let mut bumped = heap.clone();
        bumped.next += 1;
        StateM::<Heap>::then(
            <StateM<Heap> as MonadState<Heap>>::put(bumped),
            StateM::<Heap>::pure(addr),
        )
    })
}

/// The outcome of a concrete CESK run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program evaluated to a closure.
    Halted {
        /// The result value.
        value: Closure<HeapAddr>,
        /// The final heap.
        heap: Heap,
        /// How many machine transitions were taken.
        steps: usize,
    },
    /// The step budget ran out first.
    OutOfFuel {
        /// The last state reached.
        state: PState<HeapAddr>,
        /// The heap at that point.
        heap: Heap,
    },
    /// The machine got stuck (e.g. on an unbound variable) — the concrete
    /// counterpart of the abstract error layer: `mnext` produced an error
    /// state instead of panicking, so stuckness is an outcome, not a
    /// crash.
    Stuck {
        /// The error message carried by the stuck state.
        message: String,
        /// The heap at that point.
        heap: Heap,
        /// How many machine transitions were taken.
        steps: usize,
    },
}

impl Outcome {
    /// Whether evaluation finished.
    pub fn halted(&self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }

    /// The result closure, if evaluation finished.
    pub fn value(&self) -> Option<&Closure<HeapAddr>> {
        match self {
            Outcome::Halted { value, .. } => Some(value),
            Outcome::OutOfFuel { .. } | Outcome::Stuck { .. } => None,
        }
    }

    /// The error message, if the run got stuck.
    pub fn stuck_message(&self) -> Option<&str> {
        match self {
            Outcome::Stuck { message, .. } => Some(message),
            _ => None,
        }
    }

    /// The heap at the end of the run.
    pub fn heap(&self) -> &Heap {
        match self {
            Outcome::Halted { heap, .. }
            | Outcome::OutOfFuel { heap, .. }
            | Outcome::Stuck { heap, .. } => heap,
        }
    }
}

/// Evaluates a closed term with the concrete CESK machine.  A term that
/// gets stuck (references an unbound variable) returns
/// [`Outcome::Stuck`].
pub fn evaluate_with_limit(term: &Term, max_steps: usize) -> Outcome {
    evaluate_governed(term, &Budget::unlimited().with_max_steps(max_steps))
}

/// Evaluates a closed term under a [`Budget`]: the governor is consulted
/// before every machine transition, so step limits, deadlines and
/// cancellation all land within one transition.  A concrete run has no
/// rounds, so the budget's round count advances in lockstep with its step
/// count.  A stuck term returns [`Outcome::Stuck`].
pub fn evaluate_governed(term: &Term, budget: &Budget) -> Outcome {
    let mut state = PState::inject(term.clone());
    let mut heap = Heap::new();
    let mut steps = 0usize;
    loop {
        if let Some(value) = state.result() {
            return Outcome::Halted {
                value: value.clone(),
                heap,
                steps,
            };
        }
        // Error states self-loop (they are final for `mnext`), so the
        // driver surfaces them as an outcome instead of spinning.
        if let Some(message) = state.error() {
            return Outcome::Stuck {
                message: message.to_owned(),
                heap,
                steps,
            };
        }
        if budget.exhausted(steps, steps).is_some() {
            return Outcome::OutOfFuel { state, heap };
        }
        let (next_state, next_heap) = run_state(mnext::<StateM<Heap>, HeapAddr>(state), heap);
        state = next_state;
        heap = next_heap;
        steps += 1;
    }
}

/// Evaluates a closed term with a generous default step budget.  A stuck
/// term returns [`Outcome::Stuck`].
pub fn evaluate(term: &Term) -> Outcome {
    evaluate_with_limit(term, 1_000_000)
}

/// Decodes a Church numeral by applying it to a counting function: the
/// result is the number of times the numeral's `f` argument was invoked.
///
/// # Panics
///
/// Panics if `numeral` is not a closed term evaluating to a Church numeral.
pub fn decode_church_numeral(numeral: &Term) -> usize {
    // (numeral (λ cf. cf) (λ cx. cx)) — every application of the numeral's
    // `f` argument allocates a fresh binding of `cf`, so counting the
    // allocations of `cf` decodes the numeral.  Labels are irrelevant to
    // concrete evaluation, so a fresh builder is fine here.
    let mut builder = crate::syntax::TermBuilder::new();
    let applied = builder.apps(
        numeral.clone(),
        vec![
            Term::lam("cf", Term::var("cf")),
            Term::lam("cx", Term::var("cx")),
        ],
    );
    let outcome = evaluate(&applied);
    assert!(outcome.halted(), "church numeral decoding diverged");
    outcome.heap().allocations_for(&Name::from("cf"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{church_add, church_exp, church_mul, church_numeral, TermBuilder};

    #[test]
    fn identity_application_evaluates_to_the_argument() {
        let mut b = TermBuilder::new();
        let t = b.app(
            Term::lam("x", Term::var("x")),
            Term::lam("y", Term::var("y")),
        );
        let out = evaluate(&t);
        assert!(out.halted());
        assert_eq!(out.value().unwrap().param, Name::from("y"));
    }

    #[test]
    fn let_binds_and_returns_the_body() {
        let mut b = TermBuilder::new();
        let body = b.app(Term::var("f"), Term::lam("z", Term::var("z")));
        let t = b.let_in("f", Term::lam("x", Term::var("x")), body);
        let out = evaluate(&t);
        assert_eq!(out.value().unwrap().param, Name::from("z"));
    }

    #[test]
    fn omega_runs_out_of_fuel() {
        let mut b = TermBuilder::new();
        let ff = b.app(Term::var("f"), Term::var("f"));
        let gg = b.app(Term::var("g"), Term::var("g"));
        let omega = b.app(Term::lam("f", ff), Term::lam("g", gg));
        let out = evaluate_with_limit(&omega, 300);
        assert!(!out.halted());
    }

    #[test]
    fn church_numerals_decode_to_themselves() {
        let mut b = TermBuilder::new();
        for n in 0..5 {
            let numeral = church_numeral(&mut b, n);
            assert_eq!(decode_church_numeral(&numeral), n);
        }
    }

    #[test]
    fn church_arithmetic_is_correct() {
        let mut b = TermBuilder::new();
        let two = church_numeral(&mut b, 2);
        let three = church_numeral(&mut b, 3);

        let add = church_add(&mut b);
        let five = b.apps(add, vec![two.clone(), three.clone()]);
        assert_eq!(decode_church_numeral(&five), 5);

        let mul = church_mul(&mut b);
        let six = b.apps(mul, vec![two.clone(), three.clone()]);
        assert_eq!(decode_church_numeral(&six), 6);

        let exp = church_exp(&mut b);
        let eight = b.apps(exp, vec![two.clone(), three.clone()]);
        assert_eq!(decode_church_numeral(&eight), 8);

        let exp = church_exp(&mut b);
        let nine = b.apps(exp, vec![three, two]);
        assert_eq!(decode_church_numeral(&nine), 9);
    }

    #[test]
    fn open_terms_get_stuck() {
        let out = evaluate(&Term::var("free"));
        assert!(!out.halted());
        let message = out.stuck_message().expect("open term must get stuck");
        assert!(
            message.contains("unbound variable `free`"),
            "unexpected stuck message: {message}"
        );
    }
}
