//! A parser for the direct-style λ-calculus.
//!
//! Grammar (s-expressions):
//!
//! ```text
//! e ::= x                      variable
//!     | (λ (x) e)              abstraction  (`lambda` also accepted;
//!     | (λ (x y …) e)           multi-parameter lambdas are curried)
//!     | (let (x e₁) e₂)        let-binding
//!     | (e₀ e₁ e₂ …)           application  (left-associated)
//! ```

use std::error::Error;
use std::fmt;

use mai_core::name::{LabelSupply, Name};
use mai_core::sexp::{parse_one, ParseSexpError, Sexp};

use crate::syntax::{Term, Var};

/// An error produced while parsing a direct-style term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTermError {
    /// The underlying s-expression was malformed.
    Sexp(ParseSexpError),
    /// A form was malformed (bad lambda, bad let, empty application, …).
    Malformed(String),
    /// A keyword was used as a variable.
    ReservedWord(String),
}

impl fmt::Display for ParseTermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTermError::Sexp(e) => write!(f, "malformed s-expression: {}", e),
            ParseTermError::Malformed(msg) => write!(f, "malformed term: {}", msg),
            ParseTermError::ReservedWord(w) => write!(f, "reserved word used as variable: {}", w),
        }
    }
}

impl Error for ParseTermError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTermError::Sexp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseSexpError> for ParseTermError {
    fn from(e: ParseSexpError) -> Self {
        ParseTermError::Sexp(e)
    }
}

const KEYWORDS: &[&str] = &["λ", "lambda", "let"];

fn parse_var(atom: &str) -> Result<Var, ParseTermError> {
    if KEYWORDS.contains(&atom) {
        return Err(ParseTermError::ReservedWord(atom.to_string()));
    }
    Ok(Name::from(atom))
}

fn parse_term_sexp(sexp: &Sexp, labels: &mut LabelSupply) -> Result<Term, ParseTermError> {
    match sexp {
        Sexp::Atom(a) => Ok(Term::Var(parse_var(a)?)),
        Sexp::List(items) => {
            if items.is_empty() {
                return Err(ParseTermError::Malformed("empty application".to_string()));
            }
            match items[0].as_atom() {
                Some(head) if head == "λ" || head == "lambda" => {
                    if items.len() != 3 {
                        return Err(ParseTermError::Malformed(
                            "lambda expects a parameter list and a body".to_string(),
                        ));
                    }
                    let params = match &items[1] {
                        Sexp::List(ps) if !ps.is_empty() => ps
                            .iter()
                            .map(|p| {
                                p.as_atom()
                                    .ok_or_else(|| {
                                        ParseTermError::Malformed(
                                            "parameters must be identifiers".to_string(),
                                        )
                                    })
                                    .and_then(parse_var)
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => {
                            return Err(ParseTermError::Malformed(
                                "lambda expects a non-empty parenthesised parameter list"
                                    .to_string(),
                            ))
                        }
                    };
                    let body = parse_term_sexp(&items[2], labels)?;
                    Ok(params
                        .into_iter()
                        .rev()
                        .fold(body, |acc, p| Term::lam(p, acc)))
                }
                Some("let") => {
                    if items.len() != 3 {
                        return Err(ParseTermError::Malformed(
                            "let expects a binding and a body".to_string(),
                        ));
                    }
                    let (name, rhs) = match &items[1] {
                        Sexp::List(binding) if binding.len() == 2 => {
                            let name = binding[0]
                                .as_atom()
                                .ok_or_else(|| {
                                    ParseTermError::Malformed("let binds an identifier".to_string())
                                })
                                .and_then(parse_var)?;
                            let rhs = parse_term_sexp(&binding[1], labels)?;
                            (name, rhs)
                        }
                        _ => {
                            return Err(ParseTermError::Malformed(
                                "let expects a (name term) binding".to_string(),
                            ))
                        }
                    };
                    let body = parse_term_sexp(&items[2], labels)?;
                    Ok(Term::let_in(labels.fresh(), name, rhs, body))
                }
                _ => {
                    // Application, left-associated over all operands.
                    if items.len() == 1 {
                        return Err(ParseTermError::Malformed(
                            "an application needs at least one operand".to_string(),
                        ));
                    }
                    let terms = items
                        .iter()
                        .map(|s| parse_term_sexp(s, labels))
                        .collect::<Result<Vec<_>, _>>()?;
                    let mut iter = terms.into_iter();
                    let mut acc = iter.next().expect("non-empty");
                    for t in iter {
                        acc = Term::app(labels.fresh(), acc, t);
                    }
                    Ok(acc)
                }
            }
        }
    }
}

/// Parses a direct-style term from its s-expression concrete syntax.
///
/// # Errors
///
/// Returns [`ParseTermError`] when the input is not a well-formed term.
///
/// ```rust
/// use mai_lambda::parser::parse_term;
/// let t = parse_term("(let (id (λ (x) x)) (id id))").unwrap();
/// assert!(t.is_closed());
/// ```
pub fn parse_term(input: &str) -> Result<Term, ParseTermError> {
    let sexp = parse_one(input)?;
    let mut labels = LabelSupply::new();
    parse_term_sexp(&sexp, &mut labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_variables_lambdas_lets_and_applications() {
        let t = parse_term("(let (id (λ (x) x)) (id (lambda (y) y)))").unwrap();
        assert!(t.is_closed());
        assert_eq!(t.labels().len(), 2); // one let, one application
    }

    #[test]
    fn multi_parameter_lambdas_are_curried() {
        let t = parse_term("(λ (a b) a)").unwrap();
        match t {
            Term::Lam { param, body } => {
                assert_eq!(param, Name::from("a"));
                assert!(matches!(body.as_ref(), Term::Lam { .. }));
            }
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn applications_left_associate() {
        let t = parse_term("(f a b)").unwrap();
        match t {
            Term::App { func, arg, .. } => {
                assert_eq!(arg.as_ref(), &Term::var("b"));
                assert!(matches!(func.as_ref(), Term::App { .. }));
            }
            _ => panic!("expected application"),
        }
    }

    #[test]
    fn malformed_forms_are_rejected() {
        assert!(matches!(
            parse_term("()").unwrap_err(),
            ParseTermError::Malformed(_)
        ));
        assert!(matches!(
            parse_term("(λ (x))").unwrap_err(),
            ParseTermError::Malformed(_)
        ));
        assert!(matches!(
            parse_term("(λ () x)").unwrap_err(),
            ParseTermError::Malformed(_)
        ));
        assert!(matches!(
            parse_term("(let (x) x)").unwrap_err(),
            ParseTermError::Malformed(_)
        ));
        assert!(matches!(
            parse_term("(f)").unwrap_err(),
            ParseTermError::Malformed(_)
        ));
        assert!(matches!(
            parse_term("(f x").unwrap_err(),
            ParseTermError::Sexp(_)
        ));
        assert!(matches!(
            parse_term("(λ (let) let)").unwrap_err(),
            ParseTermError::ReservedWord(_)
        ));
    }

    #[test]
    fn parse_round_trips_through_display() {
        for text in [
            "(λ (x) x)",
            "((λ (x) x) (λ (y) y))",
            "(let (f (λ (x) x)) (f f))",
        ] {
            let parsed = parse_term(text).unwrap();
            let reparsed = parse_term(&parsed.to_string()).unwrap();
            assert_eq!(parsed.to_string(), reparsed.to_string());
        }
    }

    #[test]
    fn errors_display_and_chain() {
        let err = parse_term("(f x").unwrap_err();
        assert!(!err.to_string().is_empty());
        assert!(std::error::Error::source(&err).is_some());
    }
}
