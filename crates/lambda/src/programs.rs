//! Benchmark and example programs for the direct-style λ-calculus.

use crate::syntax::{church_add, church_exp, church_mul, church_numeral, Term, TermBuilder};

/// `(λx. x) (λy. y)` — the identity applied to the identity.
pub fn identity_application() -> Term {
    let mut b = TermBuilder::new();
    b.app(
        Term::lam("x", Term::var("x")),
        Term::lam("y", Term::var("y")),
    )
}

/// The divergent Ω combinator.
pub fn omega() -> Term {
    let mut b = TermBuilder::new();
    let ff = b.app(Term::var("f"), Term::var("f"));
    let gg = b.app(Term::var("g"), Term::var("g"));
    b.app(Term::lam("f", ff), Term::lam("g", gg))
}

/// Church-numeral addition `m + n`, as an unevaluated program.
pub fn church_addition(m: usize, n: usize) -> Term {
    let mut b = TermBuilder::new();
    let add = church_add(&mut b);
    let cm = church_numeral(&mut b, m);
    let cn = church_numeral(&mut b, n);
    b.apps(add, vec![cm, cn])
}

/// Church-numeral multiplication `m × n`, as an unevaluated program.
pub fn church_multiplication(m: usize, n: usize) -> Term {
    let mut b = TermBuilder::new();
    let mul = church_mul(&mut b);
    let cm = church_numeral(&mut b, m);
    let cn = church_numeral(&mut b, n);
    b.apps(mul, vec![cm, cn])
}

/// Church-numeral exponentiation `m ^ n`, as an unevaluated program.
pub fn church_exponentiation(m: usize, n: usize) -> Term {
    let mut b = TermBuilder::new();
    let exp = church_exp(&mut b);
    let cm = church_numeral(&mut b, m);
    let cn = church_numeral(&mut b, n);
    b.apps(exp, vec![cm, cn])
}

/// A `let`-chain re-binding a shared identity at `n` distinct call sites —
/// the direct-style analogue of the CPS `fan_out` polyvariance benchmark.
pub fn let_chain(n: usize) -> Term {
    let mut b = TermBuilder::new();
    // let id = λx. x in
    //   let v1 = id (λ p1. p1) in … let vn = id (λ pn. pn) in vn
    let mut body = Term::var(format!("v{}", n.max(1)));
    for i in (1..=n.max(1)).rev() {
        let call = b.app(
            Term::var("id"),
            Term::lam(format!("p{i}"), Term::var(format!("p{i}"))),
        );
        body = b.let_in(&format!("v{i}"), call, body);
    }
    b.let_in("id", Term::lam("x", Term::var("x")), body)
}

/// The "blur" benchmark (Shivers): repeatedly η-expands and applies an
/// identity so that a monovariant analysis loses track of which lambda goes
/// where.  Scaled by the number of blur rounds.
pub fn blur(rounds: usize) -> Term {
    let mut b = TermBuilder::new();
    // let id = λx. x in
    // let blur = λy. id y in
    //   blur (blur (… (blur (λz. z)) …))
    let mut body = Term::lam("z", Term::var("z"));
    for _ in 0..rounds {
        body = b.app(Term::var("blur"), body);
    }
    let blur_fn = {
        let idy = b.app(Term::var("id"), Term::var("y"));
        Term::lam("y", idy)
    };
    let inner = b.let_in("blur", blur_fn, body);
    b.let_in("id", Term::lam("x", Term::var("x")), inner)
}

/// The standard direct-style corpus used by the experiment harness.
pub fn standard_corpus() -> Vec<(&'static str, Term)> {
    vec![
        ("identity", identity_application()),
        ("omega", omega()),
        ("church-add-2-3", church_addition(2, 3)),
        ("church-mul-2-2", church_multiplication(2, 2)),
        ("church-exp-2-2", church_exponentiation(2, 2)),
        ("let-chain-6", let_chain(6)),
        ("blur-3", blur(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyse_kcfa_shared, analyse_mono};
    use crate::concrete::{decode_church_numeral, evaluate_with_limit};
    use crate::machine::PState;

    #[test]
    fn corpus_terms_are_closed() {
        for (name, term) in standard_corpus() {
            assert!(term.is_closed(), "{name} is open");
        }
    }

    #[test]
    fn church_programs_compute_the_right_numbers() {
        assert_eq!(decode_church_numeral(&church_addition(2, 3)), 5);
        assert_eq!(decode_church_numeral(&church_multiplication(3, 3)), 9);
        assert_eq!(decode_church_numeral(&church_exponentiation(2, 3)), 8);
        assert_eq!(decode_church_numeral(&church_exponentiation(3, 2)), 9);
    }

    #[test]
    fn concrete_evaluation_terminates_on_every_corpus_entry_except_omega() {
        for (name, term) in standard_corpus() {
            // The fresh-address heap makes each step cost O(heap), so a
            // divergent term that exhausts its whole budget runs in
            // quadratic time — give omega a budget that classifies it
            // quickly; the halting entries finish far below either limit.
            let budget = if name == "omega" { 2_000 } else { 100_000 };
            let out = evaluate_with_limit(&term, budget);
            if name == "omega" {
                assert!(!out.halted());
            } else {
                assert!(out.halted(), "{name} did not halt");
            }
        }
    }

    #[test]
    fn analyses_terminate_on_the_whole_corpus() {
        for (name, term) in standard_corpus() {
            let mono = analyse_mono(&term);
            assert!(!mono.is_empty(), "{name}: empty 0CFA result");
            if name != "omega" {
                assert!(
                    mono.distinct_states().iter().any(PState::is_final),
                    "{name}: 0CFA lost the final state"
                );
            }
            let one = analyse_kcfa_shared::<1>(&term);
            assert!(!one.is_empty(), "{name}: empty 1CFA result");
        }
    }

    #[test]
    fn generators_scale_with_their_parameter() {
        assert!(let_chain(8).size() > let_chain(2).size());
        assert!(blur(5).size() > blur(1).size());
        assert!(church_exponentiation(3, 3).size() >= church_exponentiation(2, 2).size());
    }
}
