//! # mai-lambda — direct-style λ-calculus on a CESK machine
//!
//! The second language substrate of the *Monadic Abstract Interpreters*
//! reproduction.  The paper's own implementation replays its monadic
//! refactoring for a direct-style λ-calculus evaluated by a CESK machine
//! with store-allocated continuations; this crate is that replay in Rust:
//!
//! * [`syntax`] — terms (variables, λ, application, `let`) with labelled
//!   program points, plus Church-encoding builders.
//! * [`parser`] — a Scheme-like concrete syntax.
//! * [`machine`] — the monadic CESK machine: values, store-allocated
//!   continuations, the semantic interface [`machine::CeskInterface`] and
//!   the transition function [`machine::mnext`].
//! * [`concrete`] — the concrete interpreter (deterministic state monad
//!   over a real heap), including a Church-numeral decoder used for
//!   adequacy tests.
//! * [`analysis`] — the abstract interpreters, assembled from the *same*
//!   `mai-core` monads, contexts, stores and GC as the CPS and
//!   Featherweight Java substrates.
//! * [`programs`] — benchmark terms (Church arithmetic, blur, let-chains).
//!
//! ```rust
//! use mai_lambda::parser::parse_term;
//! use mai_lambda::analysis::analyse_mono;
//!
//! let term = parse_term("((λ (x) x) (λ (y) y))").unwrap();
//! let result = analyse_mono(&term);
//! assert!(result.distinct_states().iter().any(|s| s.is_final()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod concrete;
pub mod direct;
pub mod machine;
pub mod parser;
pub mod programs;
pub mod syntax;

pub use analysis::{
    abstract_errors, analyse, analyse_kcfa, analyse_kcfa_shared, analyse_kcfa_shared_gc,
    analyse_kcfa_shared_gc_worklist, analyse_kcfa_shared_rescan, analyse_kcfa_shared_structural,
    analyse_kcfa_shared_worklist, analyse_kcfa_with_count, analyse_kcfa_with_count_worklist,
    analyse_kcfa_worklist, analyse_mono, analyse_mono_worklist, analyse_with_gc,
    analyse_with_gc_worklist, analyse_with_gc_worklist_rescan, analyse_with_gc_worklist_structural,
    analyse_worklist, analyse_worklist_rescan, analyse_worklist_structural, distinct_env_count,
    flow_map_of_store, CeskGc,
};
pub use analysis::{
    analyse_kcfa_shared_direct, analyse_kcfa_shared_direct_traced, analyse_kcfa_shared_elastic,
    analyse_kcfa_shared_elastic_traced, analyse_kcfa_shared_gc_direct,
    analyse_kcfa_shared_gc_elastic, analyse_kcfa_shared_parallel_traced,
    analyse_kcfa_with_count_direct, analyse_mono_direct, analyse_mono_elastic,
    analyse_with_gc_worklist_direct, analyse_worklist_direct, analyse_worklist_direct_traced,
    analyse_worklist_elastic_traced, analyse_worklist_parallel_traced,
};
pub use concrete::{decode_church_numeral, evaluate, evaluate_with_limit, Outcome};
pub use direct::mnext_direct;
pub use machine::{mnext, CeskInterface, Closure, Control, Env, Kont, KontKind, PState, Storable};
pub use parser::{parse_term, ParseTermError};
pub use syntax::{church_numeral, Term, TermBuilder, Var};
