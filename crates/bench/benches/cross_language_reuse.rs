//! E6 — the same monadic parameters (0CFA / 1CFA, shared store) driving all
//! three language substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use mai_cps::convert::cps_convert;

fn cross_language_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_language_reuse");
    group.sample_size(10);

    let cesk_term = mai_lambda::programs::church_multiplication(2, 2);
    let cps_program = cps_convert(&cesk_term);
    let fj_program = mai_fj::programs::two_cells();

    group.bench_function("cps/0CFA/church-2x2", |b| {
        b.iter(|| mai_cps::analyse_mono(&cps_program))
    });
    group.bench_function("cesk/0CFA/church-2x2", |b| {
        b.iter(|| mai_lambda::analyse_mono(&cesk_term))
    });
    group.bench_function("fj/0CFA/two-cells", |b| {
        b.iter(|| mai_fj::analyse_mono(&fj_program))
    });
    group.bench_function("fj/1CFA/two-cells", |b| {
        b.iter(|| mai_fj::analyse_kcfa_shared::<1>(&fj_program))
    });
    group.finish();
}

criterion_group!(benches, cross_language_reuse);
criterion_main!(benches);
