//! E10 — the id-indexed (hash-consed) engine vs. the PR-2 structural-key
//! incremental engine, on the workloads where state identity dominates: the
//! scaled k-CFA worst-case family (many states with deep environments, all
//! sharing one widened store).  Both engines run the identical
//! frontier/fold strategy; the only difference is whether states are dense
//! interned ids or full structural `BTreeMap` keys — so the gap is pure
//! state-identity cost.  The garbage chain under abstract GC rides along as
//! the configuration the id-indexed engine must stay exact on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_core::KCallCtx;
use mai_cps::analysis::{analyse_kcfa_shared_structural, analyse_kcfa_shared_worklist, KStore};
use mai_cps::programs::{garbage_chain, kcfa_worst_case_scaled};
use mai_cps::{analyse_gc_worklist, analyse_gc_worklist_structural};

type GcDomain = mai_cps::analysis::KCfaShared<1>;

fn gc_interned(program: &mai_cps::syntax::CExp) -> GcDomain {
    let (result, _): (GcDomain, _) = analyse_gc_worklist::<KCallCtx<1>, KStore, _>(program);
    result
}

fn gc_structural(program: &mai_cps::syntax::CExp) -> GcDomain {
    let (result, _): (GcDomain, _) =
        analyse_gc_worklist_structural::<KCallCtx<1>, KStore, _>(program);
    result
}

fn interned_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("interned_vs_incremental");
    group.sample_size(10);
    for (n, width) in [(4usize, 8usize), (4, 16), (6, 16)] {
        let program = kcfa_worst_case_scaled(n, width);
        let id = format!("{n}w{width}");
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/structural", id.clone()),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_structural::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/interned", id),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_worklist::<1>(p)),
        );
    }
    for n in [6usize, 10] {
        let program = garbage_chain(n);
        group.bench_with_input(
            BenchmarkId::new("garbage-chain-gc/structural", n),
            &program,
            |b, p| b.iter(|| gc_structural(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("garbage-chain-gc/interned", n),
            &program,
            |b, p| b.iter(|| gc_interned(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, interned_vs_incremental);
criterion_main!(benches);
