//! E5 — abstract garbage collection: time with and without GC on a
//! garbage-heavy workload (the precision side is reported by the
//! `mai-bench` report binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{analyse_kcfa_shared, analyse_kcfa_shared_gc};
use mai_cps::programs::garbage_chain;

fn gc_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_precision");
    group.sample_size(10);
    for n in [4usize, 6] {
        let program = garbage_chain(n);
        group.bench_with_input(BenchmarkId::new("no-gc", n), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared::<1>(p))
        });
        group.bench_with_input(BenchmarkId::new("gc", n), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared_gc::<1>(p))
        });
    }
    group.finish();
}

criterion_group!(benches, gc_precision);
criterion_main!(benches);
