//! E3 — heap cloning (per-state stores) versus the single-threaded,
//! widened store, as the program grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{analyse_kcfa, analyse_kcfa_shared};
use mai_cps::programs::id_chain;

fn store_cloning_vs_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_cloning_vs_shared");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let program = id_chain(n);
        group.bench_with_input(BenchmarkId::new("per-state", n), &program, |b, p| {
            b.iter(|| analyse_kcfa::<1>(p))
        });
        group.bench_with_input(BenchmarkId::new("shared", n), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared::<1>(p))
        });
    }
    group.finish();
}

criterion_group!(benches, store_cloning_vs_shared);
criterion_main!(benches);
