//! E11 — the direct-style carrier on the persistent store spine vs. the
//! PR-3 interned engine on the `Rc`-closure carrier.
//!
//! Both sides run the *same* id-indexed incremental solver over the *same*
//! pmap-backed stores; the only difference is how a transition is
//! evaluated: `analyse_*_worklist` desugars the `Rc<dyn Fn>` monad per
//! step (one heap allocation per bind plus capture clones),
//! `analyse_*_direct` runs `mnext_direct` — plain function composition on
//! an explicit `(context, store)` pair.  The gap is therefore pure
//! carrier (bind-allocation) cost.  A GC'd configuration and a counting
//! store ride along to keep the fast path honest on the harder store
//! shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{
    analyse_kcfa_shared_direct, analyse_kcfa_shared_gc_direct, analyse_kcfa_shared_gc_worklist,
    analyse_kcfa_shared_worklist, analyse_kcfa_with_count_direct, analyse_kcfa_with_count_worklist,
};
use mai_cps::programs::{garbage_chain, kcfa_worst_case_scaled};

fn persistent_vs_interned(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistent_vs_interned");
    group.sample_size(10);
    for n in 3usize..=6 {
        let program = kcfa_worst_case_scaled(n, 16);
        let id = format!("{n}w16");
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/rc-interned", id.clone()),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_worklist::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/direct", id),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_direct::<1>(p)),
        );
    }
    let program = garbage_chain(10);
    group.bench_with_input(
        BenchmarkId::new("garbage-chain-gc/rc-interned", 10usize),
        &program,
        |b, p| b.iter(|| analyse_kcfa_shared_gc_worklist::<1>(p)),
    );
    group.bench_with_input(
        BenchmarkId::new("garbage-chain-gc/direct", 10usize),
        &program,
        |b, p| b.iter(|| analyse_kcfa_shared_gc_direct::<1>(p)),
    );
    let program = kcfa_worst_case_scaled(4, 8);
    group.bench_with_input(
        BenchmarkId::new("kcfa-worst-counting/rc-interned", "4w8"),
        &program,
        |b, p| b.iter(|| analyse_kcfa_with_count_worklist::<1>(p)),
    );
    group.bench_with_input(
        BenchmarkId::new("kcfa-worst-counting/direct", "4w8"),
        &program,
        |b, p| b.iter(|| analyse_kcfa_with_count_direct::<1>(p)),
    );
    group.finish();
}

criterion_group!(benches, persistent_vs_interned);
criterion_main!(benches);
