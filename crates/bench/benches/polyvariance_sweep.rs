//! E2 — analysis time as the polyvariance knob (k) changes, same semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{analyse_kcfa_shared, analyse_mono};
use mai_cps::programs::{fan_out, id_chain};

fn polyvariance_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyvariance_sweep");
    group.sample_size(10);
    for (name, program) in [("fan-out-5", fan_out(5)), ("id-chain-5", id_chain(5))] {
        group.bench_with_input(BenchmarkId::new("0CFA", name), &program, |b, p| {
            b.iter(|| analyse_mono(p))
        });
        group.bench_with_input(BenchmarkId::new("1CFA", name), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared::<1>(p))
        });
        group.bench_with_input(BenchmarkId::new("2CFA", name), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared::<2>(p))
        });
    }
    group.finish();
}

criterion_group!(benches, polyvariance_sweep);
criterion_main!(benches);
