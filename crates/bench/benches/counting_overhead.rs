//! E4 — the cost of abstract counting: plain store vs. counting store with
//! the same semantics and contexts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{analyse_kcfa_shared, analyse_kcfa_with_count};
use mai_cps::programs::{fan_out, identity_application};

fn counting_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_overhead");
    group.sample_size(10);
    for (name, program) in [
        ("identity", identity_application()),
        ("fan-out-5", fan_out(5)),
    ] {
        group.bench_with_input(BenchmarkId::new("plain", name), &program, |b, p| {
            b.iter(|| analyse_kcfa_shared::<1>(p))
        });
        group.bench_with_input(BenchmarkId::new("counting", name), &program, |b, p| {
            b.iter(|| analyse_kcfa_with_count::<1>(p))
        });
    }
    group.finish();
}

criterion_group!(benches, counting_overhead);
criterion_main!(benches);
