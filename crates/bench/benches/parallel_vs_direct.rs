//! E12 — the sharded parallel driver vs. the sequential direct engine.
//!
//! Both sides run the *same* id-indexed incremental solve of the *same*
//! direct-style transitions; the parallel side shards each round's
//! frontier across a persistent worker pool (work-stealing by `StateId`
//! ranges) and joins per-shard store deltas at a sync barrier.  The
//! deterministic work counters are identical by construction — the gap is
//! pure execution strategy, so the speedup tracks the host's core count:
//! ≈1× minus sync overhead on a single-CPU host, approaching the thread
//! count on the wide-frontier lanes workloads when the cores exist.
//!
//! The workload is `kcfa_worst_case_scaled(n, 16)`: 16 independent lanes
//! of the depth-`n` k-CFA paradox, all abstractly live at once, so every
//! round offers the driver ≈16–32 states to shard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{
    analyse_kcfa_shared_direct, analyse_kcfa_shared_gc_direct, analyse_kcfa_shared_gc_parallel,
    analyse_kcfa_shared_parallel,
};
use mai_cps::programs::{garbage_chain, kcfa_worst_case_scaled};

fn parallel_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_vs_direct");
    group.sample_size(10);
    for n in 3usize..=6 {
        let program = kcfa_worst_case_scaled(n, 16);
        let id = format!("{n}w16");
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/direct", id.clone()),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_direct::<1>(p)),
        );
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("kcfa-worst/parallel-t{threads}"), id.clone()),
                &program,
                |b, p| b.iter(|| analyse_kcfa_shared_parallel::<1>(p, threads)),
            );
        }
    }
    // A GC'd configuration rides along: per-branch store restriction runs
    // inside the workers, so the barrier protocol must tolerate shrunken
    // per-branch stores too.
    let program = garbage_chain(10);
    group.bench_with_input(
        BenchmarkId::new("garbage-chain-gc/direct", 10usize),
        &program,
        |b, p| b.iter(|| analyse_kcfa_shared_gc_direct::<1>(p)),
    );
    group.bench_with_input(
        BenchmarkId::new("garbage-chain-gc/parallel-t2", 10usize),
        &program,
        |b, p| b.iter(|| analyse_kcfa_shared_gc_parallel::<1>(p, 2)),
    );
    group.finish();
}

criterion_group!(benches, parallel_vs_direct);
criterion_main!(benches);
