//! Ablation — the price of the faithful layered `StateT`-over-`StateT`-
//! over-list encoding of the `StorePassing` monad, measured against a
//! hand-fused stepper that threads the context, store and branching
//! directly.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use mai_core::addr::Context;
use mai_core::monad::run_store_passing;
use mai_core::store::StoreLike;
use mai_core::{BasicStore, KCallCtx, Lattice};
use mai_cps::programs::fan_out;
use mai_cps::semantics::{mnext, PState, Val};
use mai_cps::syntax::{AExp, CExp};

type Ctx = KCallCtx<1>;
type Addr = <Ctx as Context>::Addr;
type Store = BasicStore<Addr, Val<Addr>>;
type M = mai_core::StorePassing<Ctx, Store>;

/// One monadic step from every state in a frontier, via the layered monad.
fn layered_round(frontier: &[(PState<Addr>, Ctx, Store)]) -> Vec<(PState<Addr>, Ctx, Store)> {
    let mut out = Vec::new();
    for (ps, ctx, store) in frontier {
        for ((ps2, ctx2), store2) in
            run_store_passing(mnext::<M, Addr>(ps.clone()), ctx.clone(), store.clone())
        {
            out.push((ps2, ctx2, store2));
        }
    }
    out
}

/// The same transition, hand-fused: explicit loops over callees and
/// arguments, no closures, no monad.
fn fused_round(frontier: &[(PState<Addr>, Ctx, Store)]) -> Vec<(PState<Addr>, Ctx, Store)> {
    let mut out = Vec::new();
    for (ps, ctx, store) in frontier {
        let CExp::Call { f, args, .. } = &ps.call else {
            out.push((ps.clone(), ctx.clone(), store.clone()));
            continue;
        };
        let callees: BTreeSet<Val<Addr>> = match f {
            AExp::Lam(lam) => [Val::closure(lam.clone(), ps.env.clone())]
                .into_iter()
                .collect(),
            AExp::Ref(v) => ps.env.get(v).map(|a| store.fetch(a)).unwrap_or_default(),
        };
        for callee in callees {
            let ctx2 = ctx.clone().advance(ps.call.label());
            let lambda = callee.lambda().clone();
            let mut env2 = callee.env().clone();
            let mut store2 = store.clone();
            for (param, arg) in lambda.params().iter().zip(args.iter()) {
                let addr = ctx2.valloc(param);
                let vals: BTreeSet<Val<Addr>> = match arg {
                    AExp::Lam(lam) => [Val::closure(lam.clone(), ps.env.clone())]
                        .into_iter()
                        .collect(),
                    AExp::Ref(v) => ps.env.get(v).map(|a| store.fetch(a)).unwrap_or_default(),
                };
                store2 = store2.bind(addr.clone(), vals);
                env2.insert(param.clone(), addr);
            }
            out.push((
                PState::new(lambda.body().as_ref().clone(), env2),
                ctx2,
                store2,
            ));
        }
    }
    out
}

fn transformer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformer_overhead");
    group.sample_size(10);
    let program = fan_out(5);
    let initial = vec![(
        PState::inject(program),
        Ctx::initial_context(),
        Store::bottom(),
    )];

    group.bench_function("layered-monad", |b| {
        b.iter(|| {
            let mut frontier = initial.clone();
            for _ in 0..6 {
                frontier = layered_round(&frontier);
            }
            frontier.len()
        })
    });
    group.bench_function("hand-fused", |b| {
        b.iter(|| {
            let mut frontier = initial.clone();
            for _ in 0..6 {
                frontier = fused_round(&frontier);
            }
            frontier.len()
        })
    });
    group.finish();
}

criterion_group!(benches, transformer_overhead);
criterion_main!(benches);
