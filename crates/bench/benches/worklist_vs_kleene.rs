//! E8 — the frontier-driven worklist engine vs. naive Kleene iteration on
//! the workloads where re-stepping hurts most: the k-CFA worst-case family
//! (many states, heavy sharing through the store) and the garbage chain
//! (long chains of states whose dependencies never change again).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_cps::analysis::{
    analyse_kcfa_shared, analyse_kcfa_shared_gc, analyse_kcfa_shared_gc_worklist,
    analyse_kcfa_shared_worklist,
};
use mai_cps::programs::{garbage_chain, kcfa_worst_case};

fn worklist_vs_kleene(c: &mut Criterion) {
    let mut group = c.benchmark_group("worklist_vs_kleene");
    group.sample_size(10);
    for n in [2usize, 3] {
        let program = kcfa_worst_case(n);
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/kleene", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/worklist", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_worklist::<1>(p)),
        );
    }
    for n in [6usize, 10] {
        let program = garbage_chain(n);
        group.bench_with_input(
            BenchmarkId::new("garbage-chain/kleene", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("garbage-chain/worklist", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_worklist::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("garbage-chain/kleene-gc", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_gc::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("garbage-chain/worklist-gc", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_gc_worklist::<1>(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, worklist_vs_kleene);
criterion_main!(benches);
