//! E9 — the incremental accumulator engine vs. the PR-1 rescanning engine
//! on the workloads where the per-round O(|states|) contribution re-join
//! hurts most: the k-CFA worst-case family (many states sharing one widened
//! store, so late rounds have tiny frontiers) and the garbage chain under
//! abstract GC (the GC'd configuration the engine must stay exact on; GC'd
//! contributions remain monotone across rounds, so these runs stay on the
//! fast path — the rebuild round itself is covered by a deliberately
//! non-monotone machine in the engine's unit tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mai_core::{KCallCtx, SharedStoreDomain};
use mai_cps::analysis::{analyse_kcfa_shared_rescan, analyse_kcfa_shared_worklist};
use mai_cps::programs::{garbage_chain, kcfa_worst_case};
use mai_cps::{analyse_gc_worklist, analyse_gc_worklist_rescan};

type GcDomain = mai_cps::analysis::KCfaShared<1>;

fn gc_incremental(program: &mai_cps::syntax::CExp) -> GcDomain {
    let (result, _): (
        SharedStoreDomain<_, KCallCtx<1>, mai_cps::analysis::KStore>,
        _,
    ) = analyse_gc_worklist::<KCallCtx<1>, mai_cps::analysis::KStore, _>(program);
    result
}

fn gc_rescan(program: &mai_cps::syntax::CExp) -> GcDomain {
    let (result, _): (
        SharedStoreDomain<_, KCallCtx<1>, mai_cps::analysis::KStore>,
        _,
    ) = analyse_gc_worklist_rescan::<KCallCtx<1>, mai_cps::analysis::KStore, _>(program);
    result
}

fn incremental_vs_rescan(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_rescan");
    group.sample_size(10);
    for n in [2usize, 3] {
        let program = kcfa_worst_case(n);
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/rescan", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_rescan::<1>(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("kcfa-worst/incremental", n),
            &program,
            |b, p| b.iter(|| analyse_kcfa_shared_worklist::<1>(p)),
        );
    }
    for n in [6usize, 10] {
        let program = garbage_chain(n);
        group.bench_with_input(
            BenchmarkId::new("garbage-chain-gc/rescan", n),
            &program,
            |b, p| b.iter(|| gc_rescan(p)),
        );
        group.bench_with_input(
            BenchmarkId::new("garbage-chain-gc/incremental", n),
            &program,
            |b, p| b.iter(|| gc_incremental(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, incremental_vs_rescan);
criterion_main!(benches);
