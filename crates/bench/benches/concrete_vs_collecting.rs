//! E1 — the concrete interpreter versus the fresh-address concrete
//! collecting semantics obtained from the same monadic `mnext`.

use criterion::{criterion_group, criterion_main, Criterion};
use mai_cps::programs::identity_application;
use mai_cps::{analyse_concrete_collecting, interpret_with_limit};

fn concrete_vs_collecting(c: &mut Criterion) {
    let mut group = c.benchmark_group("concrete_vs_collecting");
    group.sample_size(10);
    let program = identity_application();
    group.bench_function("concrete-interpreter", |b| {
        b.iter(|| interpret_with_limit(&program, 10_000))
    });
    group.bench_function("concrete-collecting-semantics", |b| {
        b.iter(|| analyse_concrete_collecting(&program, 64))
    });
    group.finish();
}

criterion_group!(benches, concrete_vs_collecting);
criterion_main!(benches);
