//! A minimal JSON value type and renderer for the machine-readable
//! `BENCH_report.json` emitted by the report binary.
//!
//! The workspace is built offline (no serde), so the report is assembled
//! from this tiny hand-rolled builder instead.  Only what the report needs
//! is implemented: objects, arrays, strings, integers, floats and booleans,
//! rendered with stable key order (insertion order) and two-space
//! indentation so diffs across PRs stay readable.

use std::fmt::Write as _;

use mai_core::engine::EngineStats;
use mai_core::telemetry::TraceBuffer;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A JSON object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// A JSON array.
    Arr(Vec<Json>),
    /// A string (escaped on render).
    Str(String),
    /// An integer (rendered without a fraction).
    Int(u64),
    /// A float (rendered with up to three decimals — milliseconds and
    /// ratios don't need more).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{inner_pad}\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the subset this module renders: objects,
    /// arrays, strings with the escapes the renderer emits, numbers,
    /// booleans and `null` — `null` parses as `Num(NAN)`, matching how
    /// non-finite floats render).  Used by the `--check-regress` mode to
    /// read the committed `BENCH_report.json` back in.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The value of a field of an object (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The items of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The numeric value of an `Int` or `Num` (`None` otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The integer value of an `Int` (`None` otherwise).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value of a `Str` (`None` otherwise).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.bytes.get(self.pos).map(|b| *b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Num(f64::NAN)),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("invalid escape {:?}", other)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar, validating at
                    // most the next four bytes rather than the rest of the
                    // document.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next(),
                        // A shorter valid prefix still yields the leading
                        // scalar (the chunk may split a following scalar).
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                    .ok_or("unexpected end of string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a number at byte {start}"));
        }
        if text.bytes().all(|b| b.is_ascii_digit()) {
            text.parse::<u64>()
                .map(Json::Int)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| e.to_string())
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The JSON rendering of an [`EngineStats`], shared by every report section
/// so the field names cannot drift.
pub fn engine_stats_json(stats: &EngineStats) -> Json {
    Json::obj([
        ("iterations", Json::Int(stats.iterations as u64)),
        ("states_stepped", Json::Int(stats.states_stepped as u64)),
        ("cache_hits", Json::Int(stats.cache_hits as u64)),
        ("reenqueued", Json::Int(stats.reenqueued as u64)),
        (
            "store_joins_applied",
            Json::Int(stats.store_joins_applied as u64),
        ),
        ("widen_applied", Json::Int(stats.widen_applied as u64)),
        ("store_joins", Json::Int(stats.store_joins as u64)),
        ("joins_per_round", Json::Num(stats.joins_per_round())),
        ("rebuild_rounds", Json::Int(stats.rebuild_rounds as u64)),
        ("peak_frontier", Json::Int(stats.peak_frontier as u64)),
        ("intern_hits", Json::Int(stats.intern_hits as u64)),
        ("intern_misses", Json::Int(stats.intern_misses as u64)),
        ("intern_hit_rate", Json::Num(stats.intern_hit_rate())),
        ("distinct_states", Json::Int(stats.distinct_states as u64)),
        ("distinct_envs", Json::Int(stats.distinct_envs as u64)),
        ("spine_clones", Json::Int(stats.spine_clones as u64)),
        (
            "store_bytes_shared",
            Json::Int(stats.store_bytes_shared as u64),
        ),
        ("sync_rounds", Json::Int(stats.sync_rounds as u64)),
        ("steal_events", Json::Int(stats.steal_events as u64)),
        ("shard_imbalance", Json::Int(stats.shard_imbalance as u64)),
        ("epochs_run", Json::Int(stats.epochs_run as u64)),
        ("stale_merges", Json::Int(stats.stale_merges as u64)),
        (
            "worker_cache_hits",
            Json::Int(stats.worker_cache_hits as u64),
        ),
        (
            "worker_cache_misses",
            Json::Int(stats.worker_cache_misses as u64),
        ),
        (
            "worker_cache_hit_rate",
            Json::Num(stats.worker_cache_hit_rate()),
        ),
        (
            "stripe_acquisitions",
            Json::Int(stats.stripe_acquisitions as u64),
        ),
    ])
}

/// The JSON rendering of a [`TraceBuffer`]: per-round phase rows, per-worker
/// totals, steal traffic and the top-`k` hot-spot attribution.  Shared by the
/// `--profile` mode and the E13 report section so field names cannot drift.
pub fn engine_trace_json(trace: &TraceBuffer, top_k: usize) -> Json {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    let totals = trace.phase_totals();
    let rounds: Vec<Json> = trace
        .rounds
        .iter()
        .map(|r| {
            Json::obj([
                ("round", Json::Int(r.round as u64)),
                ("frontier", Json::Int(r.frontier as u64)),
                ("stepped", Json::Int(r.stepped as u64)),
                ("joins", Json::Int(r.joins as u64)),
                ("delta_width", Json::Int(r.delta_width as u64)),
                ("rebuild", Json::Bool(r.rebuild)),
                ("step_us", us(r.step_ns)),
                ("join_us", us(r.join_ns)),
                ("sync_us", us(r.sync_ns)),
            ])
        })
        .collect();
    let workers: Vec<Json> = trace
        .worker_totals()
        .into_iter()
        .map(|(worker, processed, steals, busy_ns, wait_ns)| {
            Json::obj([
                ("worker", Json::Int(worker as u64)),
                ("processed", Json::Int(processed as u64)),
                ("steals", Json::Int(steals as u64)),
                ("busy_us", us(busy_ns)),
                ("wait_us", us(wait_ns)),
            ])
        })
        .collect();
    let hot_states: Vec<Json> = trace
        .top_states(top_k)
        .into_iter()
        .map(|h| {
            Json::obj([
                ("state", Json::Str(h.label)),
                ("steps", Json::Int(h.steps as u64)),
                ("step_us", us(h.total_ns)),
            ])
        })
        .collect();
    let hot_addresses: Vec<Json> = trace
        .top_addresses(top_k)
        .into_iter()
        .map(|h| {
            Json::obj([
                ("address", Json::Str(h.label)),
                ("joins", Json::Int(h.joins as u64)),
                ("widenings", Json::Int(h.widenings as u64)),
            ])
        })
        .collect();
    Json::obj([
        (
            "phase_totals",
            Json::obj([
                ("step_us", us(totals.step_ns)),
                ("join_us", us(totals.join_ns)),
                ("sync_us", us(totals.sync_ns)),
                ("wall_us", us(totals.wall_ns())),
            ]),
        ),
        ("steal_events", Json::Int(trace.steals.len() as u64)),
        ("rounds", Json::Arr(rounds)),
        ("workers", Json::Arr(workers)),
        ("hot_states", Json::Arr(hot_states)),
        ("hot_addresses", Json::Arr(hot_addresses)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_with_escaping() {
        let value = Json::obj([
            ("name", Json::Str("kcfa\"worst\"".into())),
            ("steps", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("equal", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let rendered = value.render();
        assert!(rendered.contains("\"kcfa\\\"worst\\\"\""));
        assert!(rendered.contains("\"steps\": 42"));
        assert!(rendered.contains("\"ratio\": 2.500"));
        assert!(rendered.contains("\"empty\": []"));
        // The output is self-consistent enough to round-trip through a
        // whitespace-insensitive comparison.
        assert!(rendered.starts_with('{') && rendered.ends_with('}'));
    }

    #[test]
    fn rendered_reports_parse_back() {
        let value = Json::obj([
            ("name", Json::Str("kcfa \"worst\"\ncase".into())),
            ("unicode", Json::Str("σ₀ → ρ̂ λx".into())),
            ("steps", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("nan", Json::Num(f64::NAN)),
            ("equal", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Num(0.125)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj([])),
        ]);
        let reparsed = Json::parse(&value.render()).expect("round trip");
        assert_eq!(
            reparsed.get("name").and_then(Json::as_str),
            Some("kcfa \"worst\"\ncase")
        );
        assert_eq!(
            reparsed.get("unicode").and_then(Json::as_str),
            Some("σ₀ → ρ̂ λx")
        );
        assert_eq!(reparsed.get("steps").and_then(Json::as_u64), Some(42));
        assert_eq!(reparsed.get("ratio").and_then(Json::as_f64), Some(2.5));
        // Non-finite floats render as null and parse back as NaN.
        assert!(reparsed.get("nan").and_then(Json::as_f64).unwrap().is_nan());
        assert_eq!(reparsed.get("equal"), Some(&Json::Bool(true)));
        assert_eq!(reparsed.get("rows").map(|r| r.items().len()), Some(2));
        assert_eq!(reparsed.get("empty_arr"), Some(&Json::Arr(vec![])));
        assert_eq!(reparsed.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("truthy").is_err());
    }

    #[test]
    fn engine_stats_serialise_every_counter() {
        let stats = EngineStats {
            iterations: 2,
            states_stepped: 5,
            store_joins: 6,
            ..EngineStats::default()
        };
        let rendered = engine_stats_json(&stats).render();
        assert!(rendered.contains("\"states_stepped\": 5"));
        assert!(rendered.contains("\"joins_per_round\": 3.000"));
    }

    /// Field-by-field audit: every field of [`EngineStats`] (recovered from
    /// its derived `Debug` output, so the list tracks the struct definition
    /// itself) must appear as a key in [`engine_stats_json`].  Adding a
    /// counter to the struct without serialising it fails here.
    #[test]
    fn engine_stats_json_covers_every_struct_field() {
        let debug = format!("{:?}", EngineStats::default());
        let body = debug
            .trim_start_matches("EngineStats")
            .trim()
            .trim_start_matches('{')
            .trim_end_matches('}');
        let fields: Vec<&str> = body
            .split(',')
            .filter_map(|pair| pair.split(':').next())
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .collect();
        // Guard against the Debug format changing shape under us: the struct
        // currently has 17 counters, and the parse must find all of them.
        assert!(
            fields.len() >= 17,
            "Debug parse found only {} fields: {fields:?}",
            fields.len()
        );
        let json = engine_stats_json(&EngineStats::default());
        for field in fields {
            assert!(
                json.get(field).is_some(),
                "EngineStats field `{field}` is missing from engine_stats_json"
            );
        }
    }

    #[test]
    fn engine_trace_json_serialises_rounds_workers_and_hot_spots() {
        use mai_core::telemetry::{RoundTrace, StealTrace, TraceSink, WorkerSpan};

        let mut trace = TraceBuffer::new();
        trace.round(RoundTrace {
            round: 0,
            frontier: 4,
            stepped: 4,
            joins: 3,
            delta_width: 2,
            rebuild: false,
            step_ns: 5_000,
            join_ns: 2_000,
            sync_ns: 1_000,
        });
        trace.worker(WorkerSpan {
            round: 0,
            worker: 1,
            processed: 4,
            steals: 1,
            busy_ns: 4_000,
            wait_ns: 1_000,
        });
        trace.steal(StealTrace {
            round: 0,
            thief: 1,
            victim: 0,
        });
        trace.state_cost("(f x)", 3_000);
        trace.join_traffic("x", true);
        let json = engine_trace_json(&trace, 8);
        let reparsed = Json::parse(&json.render()).expect("trace json parses");
        assert_eq!(reparsed.get("steal_events").and_then(Json::as_u64), Some(1));
        let rounds = reparsed.get("rounds").expect("rounds").items();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].get("frontier").and_then(Json::as_u64), Some(4));
        assert_eq!(rounds[0].get("step_us").and_then(Json::as_f64), Some(5.0));
        let workers = reparsed.get("workers").expect("workers").items();
        assert_eq!(workers[0].get("worker").and_then(Json::as_u64), Some(1));
        assert_eq!(workers[0].get("wait_us").and_then(Json::as_f64), Some(1.0));
        let hot = reparsed.get("hot_states").expect("hot states").items();
        assert_eq!(hot[0].get("state").and_then(Json::as_str), Some("(f x)"));
        let addrs = reparsed.get("hot_addresses").expect("hot addrs").items();
        assert_eq!(addrs[0].get("widenings").and_then(Json::as_u64), Some(1));
        let totals = reparsed.get("phase_totals").expect("totals");
        assert_eq!(totals.get("wall_us").and_then(Json::as_f64), Some(8.0));
    }
}
