//! A minimal JSON value type and renderer for the machine-readable
//! `BENCH_report.json` emitted by the report binary.
//!
//! The workspace is built offline (no serde), so the report is assembled
//! from this tiny hand-rolled builder instead.  Only what the report needs
//! is implemented: objects, arrays, strings, integers, floats and booleans,
//! rendered with stable key order (insertion order) and two-space
//! indentation so diffs across PRs stay readable.

use std::fmt::Write as _;

use mai_core::engine::EngineStats;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A JSON object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// A JSON array.
    Arr(Vec<Json>),
    /// A string (escaped on render).
    Str(String),
    /// An integer (rendered without a fraction).
    Int(u64),
    /// A float (rendered with up to three decimals — milliseconds and
    /// ratios don't need more).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{inner_pad}\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The JSON rendering of an [`EngineStats`], shared by every report section
/// so the field names cannot drift.
pub fn engine_stats_json(stats: &EngineStats) -> Json {
    Json::obj([
        ("iterations", Json::Int(stats.iterations as u64)),
        ("states_stepped", Json::Int(stats.states_stepped as u64)),
        ("cache_hits", Json::Int(stats.cache_hits as u64)),
        ("reenqueued", Json::Int(stats.reenqueued as u64)),
        ("store_widenings", Json::Int(stats.store_widenings as u64)),
        ("store_joins", Json::Int(stats.store_joins as u64)),
        ("joins_per_round", Json::Num(stats.joins_per_round())),
        ("rebuild_rounds", Json::Int(stats.rebuild_rounds as u64)),
        ("peak_frontier", Json::Int(stats.peak_frontier as u64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_with_escaping() {
        let value = Json::obj([
            ("name", Json::Str("kcfa\"worst\"".into())),
            ("steps", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("equal", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let rendered = value.render();
        assert!(rendered.contains("\"kcfa\\\"worst\\\"\""));
        assert!(rendered.contains("\"steps\": 42"));
        assert!(rendered.contains("\"ratio\": 2.500"));
        assert!(rendered.contains("\"empty\": []"));
        // The output is self-consistent enough to round-trip through a
        // whitespace-insensitive comparison.
        assert!(rendered.starts_with('{') && rendered.ends_with('}'));
    }

    #[test]
    fn engine_stats_serialise_every_counter() {
        let stats = EngineStats {
            iterations: 2,
            states_stepped: 5,
            store_joins: 6,
            ..EngineStats::default()
        };
        let rendered = engine_stats_json(&stats).render();
        assert!(rendered.contains("\"states_stepped\": 5"));
        assert!(rendered.contains("\"joins_per_round\": 3.000"));
    }
}
