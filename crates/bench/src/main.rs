//! The experiment report binary: regenerates the qualitative tables listed
//! in `EXPERIMENTS.md` (E1–E15), prints them to stdout and writes the
//! machine-readable `BENCH_report.json` next to the current directory so
//! the performance trajectory is tracked across PRs.
//!
//! Run with `cargo run -p mai-bench --release`.
//!
//! With `--check-regress`, instead of regenerating the report, the binary
//! re-measures the *deterministic* work counters (step-function invocations
//! and contribution joins per engine and workload), compares them against
//! the committed `BENCH_report.json`, and exits non-zero if any counter
//! regressed — the CI gate that keeps the engines from quietly re-doing
//! work they had stopped doing.  Timing fields (`wall_ms`, `host_cpus`,
//! `*_ms`) are recorded on every row but never gated.
//!
//! With `--trace-out <path>`, the binary instead solves one parallel kCFA
//! workload with the tracing sink attached (worker count from `--threads`,
//! default 2), writes the Chrome trace-event JSON to `<path>` (load it in
//! Perfetto or `chrome://tracing`), and self-validates the export.  With
//! `--profile`, it prints the human-readable phase/hot-spot profile of the
//! same solve.
//!
//! `--epochs E` sets the elastic epoch budget of the E14 section and the
//! `--parallel-smoke` elastic row (default 4; `1` is the barrier engine).
//! `--repeat N` overrides how often each timed solve is repeated — every
//! repeated row reports the minimum (`*_ms`) and, for E14, the median
//! (`*_median_ms`) wall-clock; `--check-regress` still samples counters
//! only.
//!
//! Governance knobs (E15 and `--parallel-smoke`): `--max-steps N` sets the
//! step budget of the E15 exhaustion/resume exercise (default 32);
//! `--deadline-ms N` additionally prints a deadline-bounded solve of the
//! largest workload (reported-only, never committed — wall-clock bound
//! outcomes are host-dependent); `--cancel-after-ms N` sets the watchdog
//! delay of the `--parallel-smoke` cancellation row (default 2).  Building
//! with `--features fault-inject` adds a fault-ladder row to
//! `--parallel-smoke`: both parallel rungs are forced to panic and the
//! ladder must still answer with the sequential oracle's fixpoint.

use std::time::Instant;

use mai_bench::report::Json;
use mai_bench::{
    cancel_latency_row, cloning_vs_shared, cps_corpus, direct_row, elastic_row, gc_rows,
    governed_row, host_cpus, incremental_row, interned_row, parallel_row, polyvariance_rows,
    telemetry_row, widening_row, worklist_row, E10_SCALE_WIDTH, PROFILE_TOP_K,
};
use mai_core::store::StoreLike;
use mai_cps::analysis::{analyse_kcfa_shared, analyse_mono};
use mai_cps::convert::cps_convert;
use mai_cps::programs::{garbage_chain, id_chain, kcfa_worst_case, kcfa_worst_case_scaled};
use mai_cps::{analyse_concrete_collecting, interpret_with_limit, PState};
use mai_fj::analysis::result_classes;
use mai_lambda::decode_church_numeral;

fn heading(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// E1 — adequacy: the concrete interpreter and the fresh-address concrete
/// collecting semantics agree on termination for the terminating corpus.
fn experiment_adequacy() {
    heading("E1  concrete interpreter vs. concrete collecting semantics");
    for (name, program) in cps_corpus() {
        let concrete = interpret_with_limit(&program, 2_000);
        let collecting = analyse_concrete_collecting(&program, 128);
        let collecting_halts = collecting
            .value()
            .distinct_states()
            .iter()
            .any(PState::is_final);
        println!(
            "{name:<18} concrete-halts={:<5} collecting-halts={:<5} collecting-converged={}",
            concrete.halted(),
            collecting_halts,
            collecting.converged()
        );
    }
}

/// E2 — polyvariance sweep (0CFA / 1CFA / 2CFA).
fn experiment_polyvariance() -> Vec<Json> {
    heading("E2  polyvariance sweep (shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        for row in polyvariance_rows(name, &program) {
            println!("{}", row.render());
            rows.push(row.to_json());
        }
    }
    rows
}

/// E3 — heap cloning vs. shared-store widening.
fn experiment_cloning() {
    heading("E3  per-state (heap-cloning) vs. shared-store configurations");
    for n in [2usize, 3, 4, 5] {
        let chain = id_chain(n);
        let (cloned, shared) = cloning_vs_shared(&chain);
        println!("id-chain-{n:<2}        cloned={cloned:<7} shared={shared:<7}");
    }
    for n in [1usize, 2, 3] {
        let worst = kcfa_worst_case(n);
        let (cloned, shared) = cloning_vs_shared(&worst);
        println!("kcfa-worst-{n:<2}      cloned={cloned:<7} shared={shared:<7}");
    }
}

/// E4 — abstract counting.
fn experiment_counting() {
    heading("E4  abstract counting (per-state counting store)");
    for (name, program) in cps_corpus() {
        let counted = mai_cps::analysis::analyse_kcfa_count_cloned::<1>(&program);
        let mut single = 0usize;
        let mut total = 0usize;
        for (_, store) in counted.iter() {
            single += store.single_count();
            total += store.addresses().len();
        }
        println!("{name:<18} singleton-count-certificates={single:<6} of {total}");
    }
}

/// E5 — abstract garbage collection.
fn experiment_gc() {
    heading("E5  abstract garbage collection (1CFA, shared store)");
    for n in [4usize, 6, 8] {
        let program = garbage_chain(n);
        for row in gc_rows("garbage-chain", &program) {
            println!("n={n:<3} {}", row.render());
        }
    }
}

/// E6 — the same monadic parameters drive all three languages.
fn experiment_reuse() {
    heading("E6  cross-language reuse of the monadic parameters");
    let cps_program = cps_convert(&mai_lambda::programs::church_multiplication(2, 2));
    let cps_result = analyse_mono(&cps_program);
    println!(
        "CPS     0CFA on church 2×2: {} states",
        cps_result.distinct_states().len()
    );
    let cesk_result = mai_lambda::analyse_mono(&mai_lambda::programs::church_multiplication(2, 2));
    println!(
        "CESK    0CFA on church 2×2: {} states",
        cesk_result.distinct_states().len()
    );
    let fj_result = mai_fj::analyse_mono(&mai_fj::programs::two_cells());
    println!(
        "FJ      0CFA on two-cells : {} states, result classes {:?}",
        fj_result.distinct_states().len(),
        result_classes(&fj_result)
    );
    println!(
        "church 2×2 decodes concretely to {}",
        decode_church_numeral(&mai_lambda::programs::church_multiplication(2, 2))
    );
}

/// E7 — classical expected CFA results.
fn experiment_classic() {
    heading("E7  textbook flow sets");
    let fan = mai_cps::programs::fan_out(5);
    let mono = analyse_mono(&fan);
    let one = analyse_kcfa_shared::<1>(&fan);
    let mono_flows = mai_cps::flow_map_of_store(mono.store());
    let x = mai_core::Name::from("x");
    println!(
        "fan-out-5: |0CFA flow set of x| = {} (expected 5), 1CFA singleton addresses = {}",
        mono_flows[&x].len(),
        mai_cps::AnalysisMetrics::of_shared(&one).singleton_flows
    );
}

/// E8 — the frontier-driven worklist engine vs. naive Kleene iteration:
/// identical fixpoints, strictly fewer step-function invocations.
fn experiment_worklist() -> Vec<Json> {
    heading("E8  worklist engine vs. Kleene iteration (1CFA, shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        let row = worklist_row(name, &program);
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    for (n, name) in [(3usize, "kcfa-worst-3"), (4, "kcfa-worst-4")] {
        let program = kcfa_worst_case(n);
        let row = worklist_row(name, &program);
        println!("n={n:<3} {}", row.render());
        println!("     engine: {}", row.stats);
        rows.push(row.to_json());
    }
    rows
}

/// E9 — the incremental accumulator engine vs. the PR-1 rescanning engine:
/// identical fixpoints, O(|frontier|) instead of O(|states|) contribution
/// joins per round.
fn experiment_incremental() -> Vec<Json> {
    heading("E9  incremental accumulator vs. PR-1 rescanning engine (1CFA, shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        let row = incremental_row(name, &program);
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    for (n, name) in [(3usize, "kcfa-worst-3"), (4, "kcfa-worst-4")] {
        let program = kcfa_worst_case(n);
        let row = incremental_row(name, &program);
        println!("n={n:<3} {}", row.render());
        println!("     incremental: {}", row.incremental);
        println!("     rescan:      {}", row.rescan);
        rows.push(row.to_json());
    }
    rows
}

/// The E10 workload list: the benchmark corpus plus the scaled k-CFA
/// worst-case family at the depths where wall-clock differences are
/// visible.  Shared by the report and by `--check-regress` so the two
/// always measure the same rows.
fn e10_workloads() -> Vec<(String, mai_cps::syntax::CExp, usize)> {
    let mut workloads: Vec<(String, mai_cps::syntax::CExp, usize)> = cps_corpus()
        .into_iter()
        .map(|(name, program)| (name.to_string(), program, 5))
        .collect();
    workloads.push(("kcfa-worst-4".to_string(), kcfa_worst_case(4), 5));
    for n in 3..=6 {
        workloads.push((
            format!("kcfa-worst-{n}w{E10_SCALE_WIDTH}"),
            kcfa_worst_case_scaled(n, E10_SCALE_WIDTH),
            5,
        ));
    }
    workloads
}

/// E10 — the id-indexed (hash-consed) engine vs. the PR-2 structural-key
/// incremental engine: identical fixpoints, O(1) state identity.
fn experiment_interned() -> Vec<Json> {
    heading(
        "E10  id-indexed (interned) engine vs. structural incremental engine (1CFA, shared store)",
    );
    let mut rows = Vec::new();
    for (name, program, repeats) in e10_workloads() {
        let row = interned_row(name, &program, repeat_count(repeats));
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    rows
}

/// The value of a `--flag value` style argument, if present.
fn string_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The value of a `--flag N` style argument, if present.
fn numeric_arg(flag: &str) -> Option<usize> {
    string_arg(flag).and_then(|v| v.parse().ok())
}

/// The E12 thread sweep: 1 and 2 workers plus the `--threads` top count
/// (default 4), deduplicated and sorted.
fn e12_thread_counts() -> Vec<usize> {
    let top = numeric_arg("--threads").unwrap_or(4).max(1);
    let mut counts = vec![1usize, 2, top];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The `--repeat` override: how often each timed solve is repeated
/// (defaults to the section's own repeat count when absent).
fn repeat_count(default: usize) -> usize {
    numeric_arg("--repeat").unwrap_or(default).max(1)
}

/// The `--epochs` knob: the elastic epoch budget of the E14 section and
/// the `--parallel-smoke` elastic row (default 4; `1` is the barrier
/// engine).
fn epoch_budget() -> usize {
    numeric_arg("--epochs").unwrap_or(4).max(1)
}

/// The `--max-steps` knob: the step budget of the E15 exhaustion/resume
/// exercise (default 32 — small enough to bite on every corpus workload).
fn max_steps_budget() -> usize {
    numeric_arg("--max-steps").unwrap_or(32).max(1)
}

/// The `--cancel-after-ms` knob: the watchdog delay of the
/// `--parallel-smoke` cancellation row (default 2ms).
fn cancel_after() -> std::time::Duration {
    std::time::Duration::from_millis(numeric_arg("--cancel-after-ms").unwrap_or(2) as u64)
}

/// The E12 workload list: the scaled k-CFA worst-case lanes family at the
/// acceptance depths.  Shared by the report and by `--check-regress`.
fn e12_workloads() -> Vec<(String, mai_cps::syntax::CExp)> {
    (3..=6)
        .map(|n| {
            (
                format!("kcfa-worst-{n}w{E10_SCALE_WIDTH}"),
                kcfa_worst_case_scaled(n, E10_SCALE_WIDTH),
            )
        })
        .collect()
}

/// E12 — the sharded parallel driver vs. the sequential direct engine:
/// identical fixpoints and identical deterministic work counters at every
/// thread count; wall-clock speedup when (and only when) the host has the
/// cores — the section records `host_cpus` so a 1-CPU container's ≈1×
/// rows are not mistaken for a scaling regression.
fn experiment_parallel() -> Json {
    heading("E12  sharded parallel driver vs. sequential direct engine (1CFA, shared store)");
    println!("host cpus: {}", host_cpus());
    let mut rows = Vec::new();
    for (name, program) in e12_workloads() {
        for threads in e12_thread_counts() {
            let row = parallel_row(name.clone(), &program, threads, repeat_count(3));
            println!("{}", row.render());
            rows.push(row.to_json());
        }
    }
    Json::obj([
        ("host_cpus", Json::Int(host_cpus() as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// The `--parallel-smoke` mode: one quick parallel-vs-direct row at the
/// `--threads` worker count; non-zero exit unless the fixpoints (and the
/// asserted work counters inside `parallel_row`) agree.
fn parallel_smoke() -> std::process::ExitCode {
    let threads = numeric_arg("--threads").unwrap_or(2).max(1);
    let epochs = epoch_budget();
    println!("Monadic Abstract Interpreters — parallel smoke ({threads} threads, {epochs} epochs)");
    if host_cpus() == 1 {
        println!("==================================================================");
        println!("!! HOST HAS 1 CPU — PARITY ONLY, NO SCALING CLAIM               !!");
        println!("!! the rows below verify fixpoint equality across drivers; the  !!");
        println!("!! wall-clock columns measure nothing about parallel speedup.   !!");
        println!("==================================================================");
    }
    let program = kcfa_worst_case_scaled(3, E10_SCALE_WIDTH);
    let name = format!("kcfa-worst-3w{E10_SCALE_WIDTH}");
    let row = parallel_row(name.clone(), &program, threads, 1);
    println!("{}", row.render());
    let elastic = elastic_row(name.clone(), &program, threads, epochs, 1);
    println!("{}", elastic.render());
    // Governance smoke: a watchdog thread cancels the elastic solve after
    // `--cancel-after-ms` (default 2ms).  Either outcome — cancelled
    // partial or completed fixpoint (on a fast host the solve can win the
    // race) — passes; a hang or a mangled outcome fails.
    let cancel = cancel_latency_row(name.clone(), &program, threads, epochs, cancel_after());
    println!("{}", cancel.render());
    #[cfg(feature = "fault-inject")]
    let ladder_ok = {
        let ladder = mai_bench::fault_ladder_row(name, &program, threads);
        println!("{}", ladder.render());
        ladder.equal
    };
    #[cfg(not(feature = "fault-inject"))]
    let ladder_ok = {
        println!("fault ladder       skipped (build with --features fault-inject to exercise it)");
        true
    };
    if row.equal && elastic.equal && cancel.ok() && ladder_ok {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("a parallel smoke row failed (divergence, hung cancel, or ladder mismatch)");
        std::process::ExitCode::FAILURE
    }
}

/// The E13 thread sweep: the acceptance thread counts, fixed so the
/// committed per-round profiles always decompose the same three ladder
/// rungs (sequential-in-driver, two-way, four-way).
const E13_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// E13 — engine telemetry: the sharded parallel driver solved with the
/// tracing sink attached, on the kCFA lanes family at 1/2/4 workers.
/// Tracing is pure observation — each row asserts the traced solve
/// reproduces the untraced fixpoint and work counters bit-for-bit — and
/// the committed per-round profiles decompose every round's wall-clock
/// into step, join and sync (barrier/coordination) time, with per-worker
/// busy/wait spans and the hot-spot attribution.  All of it is
/// reported-only: `--check-regress` gates nothing in this section.
fn experiment_telemetry() -> Json {
    heading("E13  engine telemetry (traced parallel driver, 1CFA, shared store)");
    println!("host cpus: {}", host_cpus());
    let mut rows = Vec::new();
    for (name, program) in e12_workloads() {
        for threads in E13_THREAD_COUNTS {
            let row = telemetry_row(name.clone(), &program, threads);
            println!("{}", row.render());
            rows.push(row.to_json());
        }
    }
    Json::obj([
        ("host_cpus", Json::Int(host_cpus() as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// E14 — the barrier-elastic driver vs. the barrier driver vs. the
/// sequential direct engine: byte-identical fixpoints at every
/// `(threads, epochs)` point (gated by the differential suite and by the
/// `equal` flag here), wall-clock and barrier-wait share as the payoff
/// metrics.  **Nothing in this section is gated**: elastic work counters
/// are timing-dependent by design — the staleness argument trades counter
/// determinism for less time at barriers.
fn experiment_elastic() -> Json {
    let epochs = epoch_budget();
    heading("E14  barrier-elastic driver vs. barrier driver (1CFA, shared store)");
    println!("host cpus: {} (epoch budget {epochs})", host_cpus());
    let mut rows = Vec::new();
    for (name, program) in e12_workloads() {
        for threads in E13_THREAD_COUNTS {
            let row = elastic_row(name.clone(), &program, threads, epochs, repeat_count(3));
            assert!(
                row.equal,
                "{name}@t{threads}e{epochs}: elastic fixpoint diverged from the direct oracle"
            );
            println!("{}", row.render());
            rows.push(row.to_json());
        }
    }
    Json::obj([
        ("host_cpus", Json::Int(host_cpus() as u64)),
        ("epoch_budget", Json::Int(epochs as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// The E15 workload list: the benchmark corpus plus the two largest k-CFA
/// worst cases, where the default 32-step budget genuinely exhausts and
/// the resume chain runs several links long.  Shared by the report and by
/// `--check-regress`.
fn e15_workloads() -> Vec<(String, mai_cps::syntax::CExp)> {
    let mut workloads: Vec<(String, mai_cps::syntax::CExp)> = cps_corpus()
        .into_iter()
        .map(|(name, program)| (name.to_string(), program))
        .collect();
    workloads.push(("kcfa-worst-4".to_string(), kcfa_worst_case(4)));
    workloads.push((
        format!("kcfa-worst-4w{E10_SCALE_WIDTH}"),
        kcfa_worst_case_scaled(4, E10_SCALE_WIDTH),
    ));
    workloads
}

/// E15 — governed engines: governed-off parity (unlimited budgets are
/// byte-identical to the classic engines, counters included — asserted,
/// and the `governed` counters plus the deterministic `resume_links` are
/// regression-gated), and step-budgeted solves resumed link by link onto
/// the one-shot fixpoint.  With `--deadline-ms N`, additionally prints a
/// deadline-bounded solve of the largest workload; that row is
/// reported-only and never committed, because wall-clock-bound outcomes
/// depend on the host.
fn experiment_governed() -> Vec<Json> {
    let max_steps = max_steps_budget();
    heading("E15  governed engines: budgets, resume, parity (1CFA, shared store)");
    let mut rows = Vec::new();
    for (name, program) in e15_workloads() {
        let row = governed_row(name.clone(), &program, max_steps);
        assert!(row.parity, "{name}: governed-off parity broke");
        assert!(row.resumed_equal, "{name}: resume diverged from one-shot");
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    if let Some(ms) = numeric_arg("--deadline-ms") {
        use mai_core::engine::Budget;
        let program = kcfa_worst_case_scaled(4, E10_SCALE_WIDTH);
        let budget = Budget::unlimited().with_timeout(std::time::Duration::from_millis(ms as u64));
        let start = Instant::now();
        let (outcome, stats) =
            mai_cps::analysis::analyse_kcfa_shared_governed::<1>(&program, &budget);
        println!(
            "deadline demo      kcfa-worst-4w{E10_SCALE_WIDTH} deadline={ms}ms wall={:<8.2?} \
             rounds={:<4} outcome={} (reported-only)",
            start.elapsed(),
            stats.iterations,
            outcome
                .exhaust_reason()
                .map_or("complete", mai_core::engine::ExhaustReason::as_str),
        );
    }
    rows
}

/// The E16 step budget of the join-only solve: deep enough that the
/// shallow capped chain completes under plain join, shallow enough that
/// the unbounded and deep-capped chains visibly starve it.
const E16_STEP_BUDGET: usize = 64;

/// The E16 workload list: the unbounded counting loop (latent
/// non-termination — join-only iteration must starve the step budget), a
/// shallow capped chain (join-only completes; pins the precision the
/// narrowing pass must recover) and a deep capped chain (finite height,
/// but join-only needs `Θ(cap)` rounds where widening needs `Θ(1)`).
/// Shared by the report and by `--check-regress`.
fn e16_workloads() -> Vec<(String, Option<i64>)> {
    vec![
        ("count-unbounded".to_string(), None),
        ("count-cap-12".to_string(), Some(12)),
        ("count-cap-4096".to_string(), Some(4096)),
    ]
}

/// E16 — widening on the infinite-height interval domain: join-only
/// budget starvation vs. widened convergence with narrowing, carrier
/// parity, and parallel/elastic driver parity.  The sequential widened
/// counters are regression-gated; the elastic driver contributes only a
/// fixpoint-parity bool (its widening counters are timing-dependent).
fn experiment_widening() -> Vec<Json> {
    heading("E16  widening: interval counting loops, chain depth vs. widening points");
    let threads = numeric_arg("--threads").unwrap_or(2).max(1);
    let mut rows = Vec::new();
    for (name, cap) in e16_workloads() {
        let row = widening_row(name.clone(), cap, E16_STEP_BUDGET, threads);
        assert!(row.carrier_parity, "{name}: Rc carrier diverged");
        assert!(row.parallel_parity, "{name}: parallel driver diverged");
        assert!(row.elastic_parity, "{name}: elastic driver diverged");
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    rows
}

/// The `--widening-canary` mode: the CI non-termination canary.  Solves
/// the unbounded counting loop join-only under a step budget — it must
/// stop with a *clean* `StepBudget` exhaustion, never hang — and then
/// with engine widening points, where the same loop must complete.  Both
/// legs run under the workflow's `timeout-minutes` backstop, so a
/// regression in either the budget plumbing or the widening-point
/// selection turns into a red build, not a stalled runner.
fn widening_canary() -> std::process::ExitCode {
    use mai_core::engine::{Budget, WidenPolicy};
    use mai_core::{DirectCollecting, SolveFrom};
    type IS = mai_core::store::IntervalStore<u8>;
    println!("Monadic Abstract Interpreters — widening canary (unbounded interval loop)");
    let step = mai_bench::counting_step(None);

    let fuel = Budget::unlimited().with_max_steps(E16_STEP_BUDGET);
    let (join_only, stats) = <mai_bench::WideningDomain as DirectCollecting<
        mai_bench::CountState,
        u64,
        IS,
    >>::explore_frontier_governed(
        &step, SolveFrom::Fresh(mai_bench::CountState(0)), &fuel
    );
    println!(
        "join-only   budget={E16_STEP_BUDGET} steps={} outcome={}",
        stats.states_stepped,
        join_only
            .exhaust_reason()
            .map_or("complete", mai_core::engine::ExhaustReason::as_str),
    );
    if join_only.exhaust_reason() != Some(mai_core::engine::ExhaustReason::StepBudget) {
        eprintln!("canary failed: join-only iteration did not starve the step budget cleanly");
        return std::process::ExitCode::FAILURE;
    }

    let widened = Budget::unlimited().with_widening(WidenPolicy::after_growths(3));
    let (outcome, stats) = <mai_bench::WideningDomain as DirectCollecting<
        mai_bench::CountState,
        u64,
        IS,
    >>::explore_frontier_governed(
        &step, SolveFrom::Fresh(mai_bench::CountState(0)), &widened
    );
    println!(
        "widened     widens={} steps={} outcome={}",
        stats.widen_applied,
        stats.states_stepped,
        outcome
            .exhaust_reason()
            .map_or("complete", mai_core::engine::ExhaustReason::as_str),
    );
    if !outcome.is_complete() {
        eprintln!("canary failed: widening points did not force convergence");
        return std::process::ExitCode::FAILURE;
    }
    let bound = outcome.into_complete().store().fetch(&0u8);
    println!("loop-head counter bound: {bound}");
    if bound != mai_core::lattice::Interval::at_least(0) {
        eprintln!("canary failed: widened bound is not [0, +∞)");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}

/// The traced workload behind `--trace-out` and `--profile`: one solve of
/// the E13 acceptance program on the parallel driver at the `--threads`
/// worker count (default 2 so worker spans and sync phases exist).
fn traced_acceptance_solve() -> (mai_bench::TelemetryRow, usize) {
    let threads = numeric_arg("--threads").unwrap_or(2).max(1);
    let program = kcfa_worst_case_scaled(4, E10_SCALE_WIDTH);
    (
        telemetry_row(format!("kcfa-worst-4w{E10_SCALE_WIDTH}"), &program, threads),
        threads,
    )
}

/// The `--trace-out <path>` mode: writes the Chrome trace-event JSON of
/// one traced parallel solve to `path`, then self-validates the export —
/// it must parse back and contain at least one slice for each phase
/// category (`step`, `join`, `sync`) and at least one `worker` span.
/// Non-zero exit otherwise, so CI can smoke the whole telemetry path.
fn trace_out(path: &str) -> std::process::ExitCode {
    let (row, threads) = traced_acceptance_solve();
    println!("Monadic Abstract Interpreters — Chrome trace export ({threads} threads)");
    println!("{}", row.render());
    if !row.equal {
        eprintln!("traced fixpoint diverged from the untraced parallel solve");
        return std::process::ExitCode::FAILURE;
    }
    let chrome = row.trace.chrome_trace_json();
    if let Err(err) = std::fs::write(path, &chrome) {
        eprintln!("failed to write {path}: {err}");
        return std::process::ExitCode::FAILURE;
    }
    let parsed = match Json::parse(&chrome) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("exported trace is not valid JSON: {err}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let events = parsed.get("traceEvents").map(Json::items).unwrap_or(&[]);
    let count = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some(cat))
            .count()
    };
    println!(
        "wrote {path}: {} events (step={} join={} sync={} worker={} steal={})",
        events.len(),
        count("step"),
        count("join"),
        count("sync"),
        count("worker"),
        count("steal"),
    );
    for cat in ["step", "join", "sync", "worker"] {
        if count(cat) == 0 {
            eprintln!("exported trace has no '{cat}' events");
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}

/// The `--profile` mode: prints the human-readable phase split, per-worker
/// totals and hot-spot attribution of one traced parallel solve.
fn profile() -> std::process::ExitCode {
    let (row, threads) = traced_acceptance_solve();
    println!("Monadic Abstract Interpreters — engine profile ({threads} threads)");
    println!("{}", row.render());
    print!("{}", row.trace.profile_summary(PROFILE_TOP_K));
    if row.equal {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("traced fixpoint diverged from the untraced parallel solve");
        std::process::ExitCode::FAILURE
    }
}

/// E11 — the direct-style carrier on the persistent store spine vs. the
/// PR-3 interned engine on the `Rc`-closure carrier: identical fixpoints
/// and identical work counters, no `Rc<dyn Fn>` allocation per bind.
fn experiment_persistent() -> Vec<Json> {
    heading(
        "E11  direct-style carrier (persistent spine) vs. Rc-closure interned engine \
         (1CFA, shared store)",
    );
    let mut rows = Vec::new();
    for (name, program, repeats) in e10_workloads() {
        let row = direct_row(name, &program, repeat_count(repeats));
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    rows
}

/// One deterministic counter of one engine row: `(section, program,
/// counter-path, fresh value)`.  `higher_is_better` selects the regression
/// direction: most counters measure *work* (growth regresses), the
/// structural-sharing byte counter measures *savings* (shrinkage
/// regresses).
type CounterSample = (&'static str, String, &'static str, u64);

/// Every deterministic counter path the regression gate samples, by
/// report section.  Reported-only fields — `wall_ms`, `host_cpus`, the
/// `*_ms` timings and the whole `e13_engine_telemetry` section — are
/// deliberately absent: the gate pins *work*, never wall-clock, and a
/// unit test keeps timing fields from creeping in.
const GATED_COUNTER_PATHS: &[(&str, &[&str])] = &[
    (
        "e8_worklist_vs_kleene",
        &[
            "kleene_steps",
            "engine.states_stepped",
            "engine.store_joins",
        ],
    ),
    (
        "e9_incremental_vs_rescan",
        &[
            "incremental.states_stepped",
            "incremental.store_joins",
            "rescan.states_stepped",
            "rescan.store_joins",
        ],
    ),
    (
        "e10_interned_vs_structural",
        &[
            "interned.states_stepped",
            "interned.store_joins",
            "structural.states_stepped",
            "structural.store_joins",
        ],
    ),
    (
        "e11_persistent_vs_interned",
        &[
            "direct.states_stepped",
            "direct.store_joins",
            "direct.spine_clones",
            "direct.store_bytes_shared",
        ],
    ),
    (
        "e12_parallel_vs_direct",
        &[
            "parallel.states_stepped",
            "parallel.store_joins",
            "parallel.sync_rounds",
        ],
    ),
    (
        "e15_governed",
        &[
            "governed.states_stepped",
            "governed.store_joins",
            "resume_links",
        ],
    ),
    // E16's elastic solve is only a parity bool in the row — its widening
    // counters are timing-dependent and deliberately exempt; the gated
    // paths below all come from the sequential widened solve.
    (
        "e16_widening",
        &[
            "widened.states_stepped",
            "widened.store_joins_applied",
            "widened.widen_applied",
        ],
    ),
];

/// The gated counter paths of one section.
fn section_paths(section: &str) -> &'static [&'static str] {
    GATED_COUNTER_PATHS
        .iter()
        .find(|(s, _)| *s == section)
        .map(|(_, paths)| *paths)
        .unwrap_or_else(|| panic!("section {section} has no gated counters"))
}

/// Samples every gated counter of one freshly measured row, reading the
/// values out of the row's own JSON rendering — the same representation
/// `--check-regress` walks in the committed report, so the fresh and
/// committed sides cannot drift apart.
fn sample_row(samples: &mut Vec<CounterSample>, section: &'static str, key: String, row: &Json) {
    for path in section_paths(section) {
        let value = committed_counter(row, path)
            .unwrap_or_else(|| panic!("{section}/{key}: fresh row misses gated counter {path}"));
        samples.push((section, key.clone(), path, value));
    }
}

/// Whether a larger fresh value is the good direction for this counter.
fn higher_is_better(counter: &str) -> bool {
    counter.ends_with("store_bytes_shared")
}

/// Reads `row.engine.states_stepped`-style nested counters out of a parsed
/// report row.
fn committed_counter(row: &Json, path: &str) -> Option<u64> {
    let mut value = row;
    for part in path.split('.') {
        value = value.get(part)?;
    }
    value.as_u64()
}

/// Measures every deterministic engine counter the report tracks, without
/// printing the tables.
fn fresh_counters() -> Vec<CounterSample> {
    let mut samples: Vec<CounterSample> = Vec::new();
    let mut corpus = cps_corpus();
    corpus.push(("kcfa-worst-3", kcfa_worst_case(3)));
    corpus.push(("kcfa-worst-4", kcfa_worst_case(4)));
    // E8: Kleene step counts and worklist engine counters.
    for (name, program) in &corpus {
        let row = worklist_row(name, program);
        assert!(row.equal, "{name}: worklist fixpoint differs from Kleene");
        sample_row(
            &mut samples,
            "e8_worklist_vs_kleene",
            name.to_string(),
            &row.to_json(),
        );
    }
    // E9: incremental vs. rescanning counters.
    for (name, program) in &corpus {
        let row = incremental_row(name, program);
        assert!(
            row.equal,
            "{name}: incremental fixpoint differs from rescan"
        );
        sample_row(
            &mut samples,
            "e9_incremental_vs_rescan",
            name.to_string(),
            &row.to_json(),
        );
    }
    // E11: direct-carrier counters (work + structural sharing).  The work
    // counters must also *match* the Rc carrier's — the solver is shared —
    // which pins the carriers to each other, not just to the baseline.
    for (name, program, _) in e10_workloads() {
        let row = direct_row(name.clone(), &program, 1);
        assert!(row.equal, "{name}: direct fixpoint differs from Rc carrier");
        assert_eq!(
            (
                row.rc.states_stepped,
                row.rc.store_joins,
                row.rc.spine_clones
            ),
            (
                row.direct.states_stepped,
                row.direct.store_joins,
                row.direct.spine_clones
            ),
            "{name}: carriers disagree on work counters"
        );
        sample_row(
            &mut samples,
            "e11_persistent_vs_interned",
            name,
            &row.to_json(),
        );
    }
    // E12: parallel-driver deterministic counters.  `parallel_row` itself
    // asserts the work counters match the sequential direct engine; the
    // gate additionally pins them (and the round structure) to the
    // committed baseline.  The timing gauges (steal_events,
    // shard_imbalance) are *not* sampled — they are legitimately
    // nondeterministic.
    for (name, program) in e12_workloads() {
        for threads in e12_thread_counts() {
            let row = parallel_row(name.clone(), &program, threads, 1);
            assert!(
                row.equal,
                "{name}@t{threads}: parallel fixpoint differs from direct"
            );
            sample_row(
                &mut samples,
                "e12_parallel_vs_direct",
                format!("{name}@t{threads}"),
                &row.to_json(),
            );
        }
    }
    // E10: id-indexed vs. structural counters.
    for (name, program, _) in e10_workloads() {
        let row = interned_row(name.clone(), &program, 1);
        assert!(
            row.equal,
            "{name}: interned fixpoint differs from structural"
        );
        sample_row(
            &mut samples,
            "e10_interned_vs_structural",
            name,
            &row.to_json(),
        );
    }
    // E15: governed-engine counters.  `governed_row` runs the unlimited
    // budget (parity with the classic engines — counters included) and the
    // step-budgeted resume chain; both invariants are asserted here, and
    // the governed work counters plus the deterministic resume-link count
    // are pinned to the committed baseline.
    for (name, program) in e15_workloads() {
        let row = governed_row(name.clone(), &program, max_steps_budget());
        assert!(row.parity, "{name}: governed-off parity broke");
        assert!(row.resumed_equal, "{name}: resume diverged from one-shot");
        sample_row(&mut samples, "e15_governed", name, &row.to_json());
    }
    // E16: widened-solve counters.  Widening points make the governed
    // sequential engine's work deterministic, so the gate pins it; the
    // three parity invariants are asserted here just as in the report.
    for (name, cap) in e16_workloads() {
        let row = widening_row(name.clone(), cap, E16_STEP_BUDGET, 2);
        assert!(row.carrier_parity, "{name}: Rc carrier diverged");
        assert!(row.parallel_parity, "{name}: parallel driver diverged");
        assert!(row.elastic_parity, "{name}: elastic driver diverged");
        sample_row(&mut samples, "e16_widening", name, &row.to_json());
    }
    samples
}

/// The `--check-regress` mode: compares freshly measured deterministic
/// counters against the committed `BENCH_report.json`.  Exits non-zero on
/// any counter that grew (the engine does *more* work than the committed
/// baseline); counters that shrank are reported as improvements and pass
/// (regenerate the report to lock them in).
fn check_regress() -> std::process::ExitCode {
    println!("Monadic Abstract Interpreters — counter regression check");
    let path = "BENCH_report.json";
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(json) => json,
            Err(err) => {
                eprintln!("failed to parse {path}: {err}");
                return std::process::ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!("failed to read {path}: {err}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut missing = 0usize;
    for (section, program, counter, fresh) in fresh_counters() {
        // E12 rows are keyed by program *and* thread count (the sample key
        // is "program@tN"); its rows live under the section's "rows" field
        // next to the host_cpus record.
        let (program_name, threads) = match program.split_once("@t") {
            Some((p, t)) => (p.to_string(), t.parse::<u64>().ok()),
            None => (program.clone(), None),
        };
        let baseline = committed
            .get(section)
            .map(|section_json| section_json.get("rows").unwrap_or(section_json))
            .and_then(|rows| {
                rows.items().iter().find(|row| {
                    row.get("program").and_then(Json::as_str) == Some(&program_name)
                        && match threads {
                            Some(t) => row.get("threads").and_then(Json::as_u64) == Some(t),
                            None => true,
                        }
                })
            })
            .and_then(|row| committed_counter(row, counter));
        match baseline {
            Some(committed_value) if fresh != committed_value => {
                // `store_bytes_shared` regresses when sharing *shrinks*;
                // every work counter regresses when it *grows*.
                let regressed = if higher_is_better(counter) {
                    fresh < committed_value
                } else {
                    fresh > committed_value
                };
                if regressed {
                    regressions += 1;
                    println!(
                        "REGRESSION  {section}/{program} {counter}: {fresh} vs committed {committed_value}"
                    );
                } else {
                    improvements += 1;
                    println!(
                        "improved    {section}/{program} {counter}: {fresh} vs committed {committed_value}"
                    );
                }
            }
            Some(_) => {}
            None => {
                missing += 1;
                println!(
                    "new row     {section}/{program} {counter}: {fresh} (no committed baseline)"
                );
            }
        }
    }
    println!(
        "\ncheck-regress: {regressions} regression(s), {improvements} improvement(s), {missing} new counter(s)"
    );
    if regressions > 0 {
        println!("step/join counters regressed — investigate, or regenerate BENCH_report.json if intentional");
        std::process::ExitCode::FAILURE
    } else {
        if improvements > 0 {
            println!(
                "counters improved — regenerate BENCH_report.json to lock the new baseline in"
            );
        }
        std::process::ExitCode::SUCCESS
    }
}

fn main() -> std::process::ExitCode {
    if std::env::args().any(|arg| arg == "--check-regress") {
        return check_regress();
    }
    if std::env::args().any(|arg| arg == "--parallel-smoke") {
        return parallel_smoke();
    }
    if std::env::args().any(|arg| arg == "--widening-canary") {
        return widening_canary();
    }
    if let Some(path) = string_arg("--trace-out") {
        return trace_out(&path);
    }
    if std::env::args().any(|arg| arg == "--profile") {
        return profile();
    }
    let started = Instant::now();
    println!("Monadic Abstract Interpreters — experiment report");
    experiment_adequacy();
    let polyvariance = experiment_polyvariance();
    experiment_cloning();
    experiment_counting();
    experiment_gc();
    experiment_reuse();
    experiment_classic();
    let worklist = experiment_worklist();
    let incremental = experiment_incremental();
    let interned = experiment_interned();
    let persistent = experiment_persistent();
    let parallel = experiment_parallel();
    let telemetry = experiment_telemetry();
    let elastic = experiment_elastic();
    let governed = experiment_governed();
    let widening = experiment_widening();

    let report = Json::obj([
        ("schema_version", Json::Int(8)),
        (
            "report_wall_clock_ms",
            Json::Num(started.elapsed().as_secs_f64() * 1e3),
        ),
        ("e2_polyvariance", Json::Arr(polyvariance)),
        ("e8_worklist_vs_kleene", Json::Arr(worklist)),
        ("e9_incremental_vs_rescan", Json::Arr(incremental)),
        ("e10_interned_vs_structural", Json::Arr(interned)),
        ("e11_persistent_vs_interned", Json::Arr(persistent)),
        ("e12_parallel_vs_direct", parallel),
        ("e13_engine_telemetry", telemetry),
        ("e14_elastic_vs_barrier", elastic),
        ("e15_governed", Json::Arr(governed)),
        ("e16_widening", Json::Arr(widening)),
    ]);
    let path = "BENCH_report.json";
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("\nfailed to write {path}: {err}"),
    }
    println!("done.");
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite guarantee behind `wall_ms`/`host_cpus`: the
    /// regression gate samples *work* counters only.  No gated path may
    /// name a timing or host field, and the telemetry section is never
    /// gated at all.
    #[test]
    fn regress_gate_never_samples_timing_fields() {
        for (section, paths) in GATED_COUNTER_PATHS {
            assert_ne!(
                *section, "e13_engine_telemetry",
                "the telemetry section is reported-only"
            );
            assert_ne!(
                *section, "e14_elastic_vs_barrier",
                "elastic counters are timing-dependent and never gated"
            );
            for path in *paths {
                for part in path.split('.') {
                    assert!(
                        part != "wall_ms" && part != "host_cpus" && !part.ends_with("_ms"),
                        "{section}: gated counter path {path} samples a timing field"
                    );
                }
            }
        }
    }

    /// Every gated path resolves inside the JSON rendering its section's
    /// row type produces — a path typo would otherwise only surface as a
    /// panic in the (slow) `--check-regress` mode.
    #[test]
    fn gated_paths_resolve_in_fresh_rows() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        let rows: Vec<(&str, Json)> = vec![
            (
                "e8_worklist_vs_kleene",
                worklist_row("w", &program).to_json(),
            ),
            (
                "e9_incremental_vs_rescan",
                incremental_row("w", &program).to_json(),
            ),
            (
                "e10_interned_vs_structural",
                interned_row("w", &program, 1).to_json(),
            ),
            (
                "e11_persistent_vs_interned",
                direct_row("w", &program, 1).to_json(),
            ),
            (
                "e12_parallel_vs_direct",
                parallel_row("w", &program, 2, 1).to_json(),
            ),
            ("e15_governed", governed_row("w", &program, 8).to_json()),
            ("e16_widening", widening_row("w", Some(12), 64, 2).to_json()),
        ];
        for (section, row) in rows {
            for path in section_paths(section) {
                assert!(
                    committed_counter(&row, path).is_some(),
                    "{section}: gated path {path} does not resolve"
                );
            }
        }
    }
}
