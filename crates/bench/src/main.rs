//! The experiment report binary: regenerates the qualitative tables listed
//! in `EXPERIMENTS.md` (E1–E9), prints them to stdout and writes the
//! machine-readable `BENCH_report.json` next to the current directory so
//! the performance trajectory is tracked across PRs.
//!
//! Run with `cargo run -p mai-bench --release`.

use std::time::Instant;

use mai_bench::report::Json;
use mai_bench::{
    cloning_vs_shared, cps_corpus, gc_rows, incremental_row, polyvariance_rows, worklist_row,
};
use mai_core::store::StoreLike;
use mai_cps::analysis::{analyse_kcfa_shared, analyse_mono};
use mai_cps::convert::cps_convert;
use mai_cps::programs::{garbage_chain, id_chain, kcfa_worst_case};
use mai_cps::{analyse_concrete_collecting, interpret_with_limit, PState};
use mai_fj::analysis::result_classes;
use mai_lambda::decode_church_numeral;

fn heading(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// E1 — adequacy: the concrete interpreter and the fresh-address concrete
/// collecting semantics agree on termination for the terminating corpus.
fn experiment_adequacy() {
    heading("E1  concrete interpreter vs. concrete collecting semantics");
    for (name, program) in cps_corpus() {
        let concrete = interpret_with_limit(&program, 2_000);
        let collecting = analyse_concrete_collecting(&program, 128);
        let collecting_halts = collecting
            .value()
            .distinct_states()
            .iter()
            .any(PState::is_final);
        println!(
            "{name:<18} concrete-halts={:<5} collecting-halts={:<5} collecting-converged={}",
            concrete.halted(),
            collecting_halts,
            collecting.converged()
        );
    }
}

/// E2 — polyvariance sweep (0CFA / 1CFA / 2CFA).
fn experiment_polyvariance() -> Vec<Json> {
    heading("E2  polyvariance sweep (shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        for row in polyvariance_rows(name, &program) {
            println!("{}", row.render());
            rows.push(row.to_json());
        }
    }
    rows
}

/// E3 — heap cloning vs. shared-store widening.
fn experiment_cloning() {
    heading("E3  per-state (heap-cloning) vs. shared-store configurations");
    for n in [2usize, 3, 4, 5] {
        let chain = id_chain(n);
        let (cloned, shared) = cloning_vs_shared(&chain);
        println!("id-chain-{n:<2}        cloned={cloned:<7} shared={shared:<7}");
    }
    for n in [1usize, 2, 3] {
        let worst = kcfa_worst_case(n);
        let (cloned, shared) = cloning_vs_shared(&worst);
        println!("kcfa-worst-{n:<2}      cloned={cloned:<7} shared={shared:<7}");
    }
}

/// E4 — abstract counting.
fn experiment_counting() {
    heading("E4  abstract counting (per-state counting store)");
    for (name, program) in cps_corpus() {
        let counted = mai_cps::analysis::analyse_kcfa_count_cloned::<1>(&program);
        let mut single = 0usize;
        let mut total = 0usize;
        for (_, store) in counted.iter() {
            single += store.single_count();
            total += store.addresses().len();
        }
        println!("{name:<18} singleton-count-certificates={single:<6} of {total}");
    }
}

/// E5 — abstract garbage collection.
fn experiment_gc() {
    heading("E5  abstract garbage collection (1CFA, shared store)");
    for n in [4usize, 6, 8] {
        let program = garbage_chain(n);
        for row in gc_rows("garbage-chain", &program) {
            println!("n={n:<3} {}", row.render());
        }
    }
}

/// E6 — the same monadic parameters drive all three languages.
fn experiment_reuse() {
    heading("E6  cross-language reuse of the monadic parameters");
    let cps_program = cps_convert(&mai_lambda::programs::church_multiplication(2, 2));
    let cps_result = analyse_mono(&cps_program);
    println!(
        "CPS     0CFA on church 2×2: {} states",
        cps_result.distinct_states().len()
    );
    let cesk_result = mai_lambda::analyse_mono(&mai_lambda::programs::church_multiplication(2, 2));
    println!(
        "CESK    0CFA on church 2×2: {} states",
        cesk_result.distinct_states().len()
    );
    let fj_result = mai_fj::analyse_mono(&mai_fj::programs::two_cells());
    println!(
        "FJ      0CFA on two-cells : {} states, result classes {:?}",
        fj_result.distinct_states().len(),
        result_classes(&fj_result)
    );
    println!(
        "church 2×2 decodes concretely to {}",
        decode_church_numeral(&mai_lambda::programs::church_multiplication(2, 2))
    );
}

/// E7 — classical expected CFA results.
fn experiment_classic() {
    heading("E7  textbook flow sets");
    let fan = mai_cps::programs::fan_out(5);
    let mono = analyse_mono(&fan);
    let one = analyse_kcfa_shared::<1>(&fan);
    let mono_flows = mai_cps::flow_map_of_store(mono.store());
    let x = mai_core::Name::from("x");
    println!(
        "fan-out-5: |0CFA flow set of x| = {} (expected 5), 1CFA singleton addresses = {}",
        mono_flows[&x].len(),
        mai_cps::AnalysisMetrics::of_shared(&one).singleton_flows
    );
}

/// E8 — the frontier-driven worklist engine vs. naive Kleene iteration:
/// identical fixpoints, strictly fewer step-function invocations.
fn experiment_worklist() -> Vec<Json> {
    heading("E8  worklist engine vs. Kleene iteration (1CFA, shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        let row = worklist_row(name, &program);
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    for (n, name) in [(3usize, "kcfa-worst-3"), (4, "kcfa-worst-4")] {
        let program = kcfa_worst_case(n);
        let row = worklist_row(name, &program);
        println!("n={n:<3} {}", row.render());
        println!("     engine: {}", row.stats);
        rows.push(row.to_json());
    }
    rows
}

/// E9 — the incremental accumulator engine vs. the PR-1 rescanning engine:
/// identical fixpoints, O(|frontier|) instead of O(|states|) contribution
/// joins per round.
fn experiment_incremental() -> Vec<Json> {
    heading("E9  incremental accumulator vs. PR-1 rescanning engine (1CFA, shared store)");
    let mut rows = Vec::new();
    for (name, program) in cps_corpus() {
        let row = incremental_row(name, &program);
        println!("{}", row.render());
        rows.push(row.to_json());
    }
    for (n, name) in [(3usize, "kcfa-worst-3"), (4, "kcfa-worst-4")] {
        let program = kcfa_worst_case(n);
        let row = incremental_row(name, &program);
        println!("n={n:<3} {}", row.render());
        println!("     incremental: {}", row.incremental);
        println!("     rescan:      {}", row.rescan);
        rows.push(row.to_json());
    }
    rows
}

fn main() {
    let started = Instant::now();
    println!("Monadic Abstract Interpreters — experiment report");
    experiment_adequacy();
    let polyvariance = experiment_polyvariance();
    experiment_cloning();
    experiment_counting();
    experiment_gc();
    experiment_reuse();
    experiment_classic();
    let worklist = experiment_worklist();
    let incremental = experiment_incremental();

    let report = Json::obj([
        ("schema_version", Json::Int(1)),
        (
            "report_wall_clock_ms",
            Json::Num(started.elapsed().as_secs_f64() * 1e3),
        ),
        ("e2_polyvariance", Json::Arr(polyvariance)),
        ("e8_worklist_vs_kleene", Json::Arr(worklist)),
        ("e9_incremental_vs_rescan", Json::Arr(incremental)),
    ]);
    let path = "BENCH_report.json";
    match std::fs::write(path, report.render() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("\nfailed to write {path}: {err}"),
    }
    println!("done.");
}
