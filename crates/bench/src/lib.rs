//! Shared helpers for the experiment harness: workload corpora and metric
//! extraction used both by the Criterion benches (`benches/`) and by the
//! `mai-bench` report binary (`src/main.rs`), which regenerates the
//! experiment tables listed in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mai_cps::analysis::{
    analyse_kcfa, analyse_kcfa_shared, analyse_kcfa_shared_gc, analyse_mono, AnalysisMetrics,
};
use mai_cps::syntax::CExp;
use mai_cps::PState;
use mai_core::KCallAddr;

/// One row of a polyvariance / precision table for a CPS program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionRow {
    /// The workload name.
    pub program: &'static str,
    /// The analysis configuration name.
    pub configuration: String,
    /// The measured metrics.
    pub metrics: AnalysisMetrics,
}

impl PrecisionRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} {:<14} states={:<5} bindings={:<5} facts={:<6} singletons={:<5}",
            self.program,
            self.configuration,
            self.metrics.distinct_states,
            self.metrics.store_bindings,
            self.metrics.store_facts,
            self.metrics.singleton_flows,
        )
    }
}

/// Runs the polyvariance sweep (experiment E2) for one program: 0CFA, 1CFA
/// and 2CFA with a shared store.
pub fn polyvariance_rows(name: &'static str, program: &CExp) -> Vec<PrecisionRow> {
    let mut rows = Vec::new();
    rows.push(PrecisionRow {
        program: name,
        configuration: "0CFA".to_string(),
        metrics: AnalysisMetrics::of_shared(&analyse_mono(program)),
    });
    rows.push(PrecisionRow {
        program: name,
        configuration: "1CFA".to_string(),
        metrics: AnalysisMetrics::of_shared(&analyse_kcfa_shared::<1>(program)),
    });
    rows.push(PrecisionRow {
        program: name,
        configuration: "2CFA".to_string(),
        metrics: AnalysisMetrics::of_shared(&analyse_kcfa_shared::<2>(program)),
    });
    rows
}

/// Runs the GC experiment (E5) for one program: 1CFA with and without
/// abstract garbage collection.
pub fn gc_rows(name: &'static str, program: &CExp) -> Vec<PrecisionRow> {
    vec![
        PrecisionRow {
            program: name,
            configuration: "1CFA".to_string(),
            metrics: AnalysisMetrics::of_shared(&analyse_kcfa_shared::<1>(program)),
        },
        PrecisionRow {
            program: name,
            configuration: "1CFA+GC".to_string(),
            metrics: AnalysisMetrics::of_shared(&analyse_kcfa_shared_gc::<1>(program)),
        },
    ]
}

/// The number of abstract configurations explored by the heap-cloning
/// analysis versus the shared-store analysis (experiment E3).
pub fn cloning_vs_shared(program: &CExp) -> (usize, usize) {
    let cloned: mai_core::PerStateDomain<
        PState<KCallAddr>,
        mai_core::KCallCtx<1>,
        mai_cps::analysis::KStore,
    > = analyse_kcfa::<1>(program);
    let shared = analyse_kcfa_shared::<1>(program);
    (cloned.len(), shared.len())
}

/// The CPS corpus used by the experiments, restricted to sizes that finish
/// quickly enough for Criterion.
pub fn cps_corpus() -> Vec<(&'static str, CExp)> {
    mai_cps::programs::standard_corpus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_and_cover_the_corpus() {
        for (name, program) in cps_corpus() {
            let rows = polyvariance_rows(name, &program);
            assert_eq!(rows.len(), 3);
            for row in &rows {
                assert!(!row.render().is_empty());
            }
        }
    }

    #[test]
    fn cloning_explores_at_least_as_many_configurations_as_sharing() {
        let program = mai_cps::programs::id_chain(4);
        let (cloned, shared) = cloning_vs_shared(&program);
        assert!(cloned >= 1);
        assert!(shared >= 1);
    }

    #[test]
    fn gc_rows_report_no_more_facts_than_plain_rows() {
        let program = mai_cps::programs::garbage_chain(4);
        let rows = gc_rows("garbage-chain-4", &program);
        assert!(rows[1].metrics.store_facts <= rows[0].metrics.store_facts);
    }
}
