//! Shared helpers for the experiment harness: workload corpora and metric
//! extraction used both by the Criterion benches (`benches/`) and by the
//! `mai-bench` report binary (`src/main.rs`), which regenerates the
//! experiment tables listed in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use mai_core::collect::explore_fp;
use mai_core::engine::{Budget, CancelToken, EngineStats, ExhaustReason, Outcome, ParallelConfig};
use mai_core::telemetry::TraceBuffer;
use mai_core::{KCallAddr, KCallCtx, StorePassing};
use mai_cps::analysis::{
    analyse_kcfa, analyse_kcfa_shared, analyse_kcfa_shared_direct, analyse_kcfa_shared_elastic,
    analyse_kcfa_shared_elastic_governed, analyse_kcfa_shared_elastic_traced,
    analyse_kcfa_shared_gc, analyse_kcfa_shared_governed, analyse_kcfa_shared_parallel,
    analyse_kcfa_shared_parallel_traced, analyse_kcfa_shared_rescan, analyse_kcfa_shared_resume,
    analyse_kcfa_shared_structural, analyse_kcfa_shared_worklist, analyse_mono, distinct_env_count,
    AnalysisMetrics, KCfaShared, KStore,
};
use mai_cps::syntax::CExp;
use mai_cps::{mnext, PState};
use report::{engine_stats_json, engine_trace_json, Json};

/// The number of logical CPUs on the reporting host.  Recorded (never
/// gated) on every report row alongside `wall_ms`, so a wall-clock number
/// is always read in the context of the machine that produced it.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `top_k` of the hot-spot attribution embedded in report rows and
/// printed by `mai-bench --profile`.
pub const PROFILE_TOP_K: usize = 8;

/// The two reported-not-gated timing fields every report row carries: the
/// row's total wall-clock and [`host_cpus`].  `--check-regress` samples
/// neither — timing is context, not a deterministic baseline.
fn timing_fields(wall: Duration) -> [(&'static str, Json); 2] {
    [
        ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
        ("host_cpus", Json::Int(host_cpus() as u64)),
    ]
}

/// Runs `f` `repeats` times (minimum 1) and returns the last result with
/// the **minimum** and **median** wall-clock across the runs — the two
/// numbers `--repeat N` reports per timed solve.  The median damps
/// scheduler noise without hiding it the way the minimum can; both are
/// reported, neither is ever gated.
pub fn repeat_timed<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, Duration, Duration) {
    let repeats = repeats.max(1);
    let mut times: Vec<Duration> = Vec::with_capacity(repeats);
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        result = Some(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    (result.expect("at least one repeat"), min, median)
}

/// One row of a polyvariance / precision table for a CPS program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionRow {
    /// The workload name.
    pub program: &'static str,
    /// The analysis configuration name.
    pub configuration: String,
    /// The measured metrics.
    pub metrics: AnalysisMetrics,
    /// Wall-clock time of the analysis (reported, never gated).
    pub wall: Duration,
}

/// Times one precision configuration for [`polyvariance_rows`] / [`gc_rows`].
fn timed_precision_row(
    program: &'static str,
    configuration: &str,
    analyse: impl FnOnce() -> AnalysisMetrics,
) -> PrecisionRow {
    let start = Instant::now();
    let metrics = analyse();
    PrecisionRow {
        program,
        configuration: configuration.to_string(),
        metrics,
        wall: start.elapsed(),
    }
}

impl PrecisionRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} {:<14} states={:<5} bindings={:<5} facts={:<6} singletons={:<5}",
            self.program,
            self.configuration,
            self.metrics.distinct_states,
            self.metrics.store_bindings,
            self.metrics.store_facts,
            self.metrics.singleton_flows,
        )
    }
}

/// Runs the polyvariance sweep (experiment E2) for one program: 0CFA, 1CFA
/// and 2CFA with a shared store.
pub fn polyvariance_rows(name: &'static str, program: &CExp) -> Vec<PrecisionRow> {
    vec![
        timed_precision_row(name, "0CFA", || {
            AnalysisMetrics::of_shared(&analyse_mono(program))
        }),
        timed_precision_row(name, "1CFA", || {
            AnalysisMetrics::of_shared(&analyse_kcfa_shared::<1>(program))
        }),
        timed_precision_row(name, "2CFA", || {
            AnalysisMetrics::of_shared(&analyse_kcfa_shared::<2>(program))
        }),
    ]
}

/// Runs the GC experiment (E5) for one program: 1CFA with and without
/// abstract garbage collection.
pub fn gc_rows(name: &'static str, program: &CExp) -> Vec<PrecisionRow> {
    vec![
        timed_precision_row(name, "1CFA", || {
            AnalysisMetrics::of_shared(&analyse_kcfa_shared::<1>(program))
        }),
        timed_precision_row(name, "1CFA+GC", || {
            AnalysisMetrics::of_shared(&analyse_kcfa_shared_gc::<1>(program))
        }),
    ]
}

/// The number of abstract configurations explored by the heap-cloning
/// analysis versus the shared-store analysis (experiment E3).
pub fn cloning_vs_shared(program: &CExp) -> (usize, usize) {
    let cloned: mai_core::PerStateDomain<
        PState<KCallAddr>,
        mai_core::KCallCtx<1>,
        mai_cps::analysis::KStore,
    > = analyse_kcfa::<1>(program);
    let shared = analyse_kcfa_shared::<1>(program);
    (cloned.len(), shared.len())
}

/// The CPS corpus used by the experiments, restricted to sizes that finish
/// quickly enough for Criterion.
pub fn cps_corpus() -> Vec<(&'static str, CExp)> {
    mai_cps::programs::standard_corpus()
}

/// One row of the worklist-vs-Kleene comparison (experiment E8): the same
/// 1CFA shared-store analysis solved by naive Kleene iteration and by the
/// frontier-driven worklist engine, with step counts and wall-clock times.
#[derive(Debug, Clone)]
pub struct WorklistRow {
    /// The workload name.
    pub program: &'static str,
    /// How many times Kleene iteration invoked the step function.
    pub kleene_steps: usize,
    /// Wall-clock time of the Kleene solve.
    pub kleene_time: Duration,
    /// The engine's work statistics.
    pub stats: EngineStats,
    /// Wall-clock time of the worklist solve.
    pub worklist_time: Duration,
    /// Whether the two fixpoints were identical (they always must be).
    pub equal: bool,
}

impl WorklistRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        let ratio = if self.stats.states_stepped > 0 {
            self.kleene_steps as f64 / self.stats.states_stepped as f64
        } else {
            f64::NAN
        };
        format!(
            "{:<18} kleene-steps={:<7} worklist-steps={:<6} step-ratio={:<5.1} \
             kleene={:<10.2?} worklist={:<10.2?} equal={}",
            self.program,
            self.kleene_steps,
            self.stats.states_stepped,
            ratio,
            self.kleene_time,
            self.worklist_time,
            self.equal,
        )
    }
}

/// Runs the E8 comparison for one program: 1CFA with a shared store, solved
/// by `explore_fp` (instrumented to count step invocations) and by the
/// worklist engine.
pub fn worklist_row(name: &'static str, program: &CExp) -> WorklistRow {
    type Ctx = KCallCtx<1>;
    type M = StorePassing<Ctx, KStore>;

    let steps = Rc::new(Cell::new(0usize));
    let counter = Rc::clone(&steps);
    let counted = move |ps: PState<KCallAddr>| {
        counter.set(counter.get() + 1);
        mnext::<M, KCallAddr>(ps)
    };
    let start = Instant::now();
    let kleene: KCfaShared<1> = explore_fp::<M, _, _, _>(counted, PState::inject(program.clone()));
    let kleene_time = start.elapsed();

    let start = Instant::now();
    let (worklist, stats) = analyse_kcfa_shared_worklist::<1>(program);
    let worklist_time = start.elapsed();

    WorklistRow {
        program: name,
        kleene_steps: steps.get(),
        kleene_time,
        stats,
        worklist_time,
        equal: worklist == kleene,
    }
}

impl PrecisionRow {
    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.to_string())),
                ("configuration", Json::Str(self.configuration.clone())),
                (
                    "distinct_states",
                    Json::Int(self.metrics.distinct_states as u64),
                ),
                (
                    "store_bindings",
                    Json::Int(self.metrics.store_bindings as u64),
                ),
                ("store_facts", Json::Int(self.metrics.store_facts as u64)),
                (
                    "singleton_flows",
                    Json::Int(self.metrics.singleton_flows as u64),
                ),
            ]
            .into_iter()
            .chain(timing_fields(self.wall)),
        )
    }
}

impl WorklistRow {
    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.to_string())),
                ("kleene_steps", Json::Int(self.kleene_steps as u64)),
                ("kleene_ms", Json::Num(self.kleene_time.as_secs_f64() * 1e3)),
                ("engine", engine_stats_json(&self.stats)),
                (
                    "worklist_ms",
                    Json::Num(self.worklist_time.as_secs_f64() * 1e3),
                ),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.kleene_time + self.worklist_time)),
        )
    }
}

/// One row of the E9 comparison: the same 1CFA shared-store analysis solved
/// by the incremental accumulator engine and by the PR-1 rescanning engine.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// The workload name.
    pub program: &'static str,
    /// `(state, guts)` pairs in the fixpoint (identical for both engines).
    pub configurations: usize,
    /// Work statistics of the incremental accumulator.
    pub incremental: EngineStats,
    /// Wall-clock time of the incremental solve.
    pub incremental_time: Duration,
    /// Work statistics of the PR-1 rescanning engine.
    pub rescan: EngineStats,
    /// Wall-clock time of the rescanning solve.
    pub rescan_time: Duration,
    /// Whether the two fixpoints were identical (they always must be).
    pub equal: bool,
}

impl IncrementalRow {
    /// Renders the row in the fixed-width format used by the report binary.
    /// The headline columns are joins-per-round: O(|frontier|) for the
    /// incremental engine against O(|states|) for the rescanning engine.
    pub fn render(&self) -> String {
        format!(
            "{:<18} states={:<5} joins/round inc={:<7.1} rescan={:<7.1} \
             inc={:<10.2?} rescan={:<10.2?} rebuilds={} equal={}",
            self.program,
            self.configurations,
            self.incremental.joins_per_round(),
            self.rescan.joins_per_round(),
            self.incremental_time,
            self.rescan_time,
            self.incremental.rebuild_rounds,
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.to_string())),
                ("configurations", Json::Int(self.configurations as u64)),
                ("incremental", engine_stats_json(&self.incremental)),
                (
                    "incremental_ms",
                    Json::Num(self.incremental_time.as_secs_f64() * 1e3),
                ),
                ("rescan", engine_stats_json(&self.rescan)),
                ("rescan_ms", Json::Num(self.rescan_time.as_secs_f64() * 1e3)),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.incremental_time + self.rescan_time)),
        )
    }
}

/// The width knob of the scaled k-CFA worst-case family measured by E10
/// (`kcfa_worst_case_scaled(n, E10_SCALE_WIDTH)` for n = 3..6): wide enough
/// that wall-clock differences between the engines dominate measurement
/// noise, small enough that the report stays fast.
pub const E10_SCALE_WIDTH: usize = 16;

/// One row of the E10 comparison: the same 1CFA shared-store analysis
/// solved by the id-indexed (hash-consed) engine and by the PR-2
/// structural-key incremental engine.
#[derive(Debug, Clone)]
pub struct InternedRow {
    /// The workload name (owned: the scaled worst-case family generates
    /// names like `kcfa-worst-4w16`).
    pub program: String,
    /// `(state, guts)` pairs in the fixpoint (identical for both engines).
    pub configurations: usize,
    /// Work statistics of the id-indexed engine, with the intern counters
    /// filled by the engine and `distinct_envs` filled at the language
    /// boundary.
    pub interned: EngineStats,
    /// Wall-clock time of the id-indexed solve.
    pub interned_time: Duration,
    /// Work statistics of the PR-2 structural-key engine.
    pub structural: EngineStats,
    /// Wall-clock time of the structural solve.
    pub structural_time: Duration,
    /// Whether the two fixpoints were identical (they always must be).
    pub equal: bool,
}

impl InternedRow {
    /// Wall-clock speedup of the id-indexed engine over the structural
    /// engine (>1 means interning won).
    pub fn speedup(&self) -> f64 {
        let interned = self.interned_time.as_secs_f64();
        if interned > 0.0 {
            self.structural_time.as_secs_f64() / interned
        } else {
            f64::NAN
        }
    }

    /// Renders the row in the fixed-width format used by the report binary.
    /// The headline column is the wall-clock speedup; the intern hit rate
    /// and the distinct state/env counts explain where it comes from.
    pub fn render(&self) -> String {
        format!(
            "{:<18} states={:<6} envs={:<5} hit-rate={:<5.2} \
             interned={:<10.2?} structural={:<10.2?} speedup={:<5.2} equal={}",
            self.program,
            self.interned.distinct_states,
            self.interned.distinct_envs,
            self.interned.intern_hit_rate(),
            self.interned_time,
            self.structural_time,
            self.speedup(),
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("configurations", Json::Int(self.configurations as u64)),
                ("interned", engine_stats_json(&self.interned)),
                (
                    "interned_ms",
                    Json::Num(self.interned_time.as_secs_f64() * 1e3),
                ),
                ("structural", engine_stats_json(&self.structural)),
                (
                    "structural_ms",
                    Json::Num(self.structural_time.as_secs_f64() * 1e3),
                ),
                ("speedup", Json::Num(self.speedup())),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.interned_time + self.structural_time)),
        )
    }
}

/// Runs the E10 comparison for one program: 1CFA with a shared store,
/// solved by the id-indexed engine and by the PR-2 structural engine.  Both
/// solves are repeated `repeats` times (minimum taken) so the small corpus
/// programs produce stable wall-clock numbers.
pub fn interned_row(name: impl Into<String>, program: &CExp, repeats: usize) -> InternedRow {
    let repeats = repeats.max(1);
    let mut interned_time = Duration::MAX;
    let mut structural_time = Duration::MAX;
    let mut measured: Option<(KCfaShared<1>, EngineStats, KCfaShared<1>, EngineStats)> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (interned, interned_stats) = analyse_kcfa_shared_worklist::<1>(program);
        interned_time = interned_time.min(start.elapsed());

        let start = Instant::now();
        let (structural, structural_stats) = analyse_kcfa_shared_structural::<1>(program);
        structural_time = structural_time.min(start.elapsed());
        measured = Some((interned, interned_stats, structural, structural_stats));
    }
    let (interned, mut interned_stats, structural, structural_stats) =
        measured.expect("at least one repeat");
    interned_stats.distinct_envs = distinct_env_count(&interned);

    InternedRow {
        program: name.into(),
        configurations: interned.len(),
        interned: interned_stats,
        interned_time,
        structural: structural_stats,
        structural_time,
        equal: interned == structural,
    }
}

/// One row of the E11 comparison: the same 1CFA shared-store analysis on
/// the persistent (pmap) store spine, solved by the PR-3 interned engine on
/// the `Rc`-closure carrier and by the same engine on the direct-style
/// carrier (`mnext_direct`, no `Rc<dyn Fn>` per bind).
#[derive(Debug, Clone)]
pub struct DirectRow {
    /// The workload name.
    pub program: String,
    /// `(state, guts)` pairs in the fixpoint (identical for both carriers).
    pub configurations: usize,
    /// Work statistics of the `Rc`-carrier (PR-3 interned) solve.
    pub rc: EngineStats,
    /// Wall-clock time of the `Rc`-carrier solve.
    pub rc_time: Duration,
    /// Work statistics of the direct-carrier solve.  The *work* counters
    /// (steps, joins, spine clones) are identical to the `Rc` side by
    /// construction — the solver code is shared — which is itself asserted;
    /// only wall-clock differs.
    pub direct: EngineStats,
    /// Wall-clock time of the direct-carrier solve.
    pub direct_time: Duration,
    /// Whether the two fixpoints were identical (they always must be).
    pub equal: bool,
}

impl DirectRow {
    /// Wall-clock speedup of the direct carrier over the `Rc` carrier
    /// (>1 means eliminating the per-bind `Rc` allocations won).
    pub fn speedup(&self) -> f64 {
        let direct = self.direct_time.as_secs_f64();
        if direct > 0.0 {
            self.rc_time.as_secs_f64() / direct
        } else {
            f64::NAN
        }
    }

    /// Renders the row in the fixed-width format used by the report binary.
    /// The headline column is the wall-clock speedup; the spine counters
    /// show the structural sharing both carriers now enjoy.
    pub fn render(&self) -> String {
        format!(
            "{:<18} states={:<6} clones={:<6} shared-bytes={:<8} \
             rc={:<10.2?} direct={:<10.2?} speedup={:<5.2} equal={}",
            self.program,
            self.direct.distinct_states,
            self.direct.spine_clones,
            self.direct.store_bytes_shared,
            self.rc_time,
            self.direct_time,
            self.speedup(),
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("configurations", Json::Int(self.configurations as u64)),
                ("rc", engine_stats_json(&self.rc)),
                ("rc_ms", Json::Num(self.rc_time.as_secs_f64() * 1e3)),
                ("direct", engine_stats_json(&self.direct)),
                ("direct_ms", Json::Num(self.direct_time.as_secs_f64() * 1e3)),
                ("speedup", Json::Num(self.speedup())),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.rc_time + self.direct_time)),
        )
    }
}

/// Runs the E11 comparison for one program: 1CFA with a shared store,
/// solved by the PR-3 interned engine on both carriers.  Both solves are
/// repeated `repeats` times (minimum taken).
pub fn direct_row(name: impl Into<String>, program: &CExp, repeats: usize) -> DirectRow {
    let repeats = repeats.max(1);
    let mut rc_time = Duration::MAX;
    let mut direct_time = Duration::MAX;
    let mut measured: Option<(KCfaShared<1>, EngineStats, KCfaShared<1>, EngineStats)> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (rc, rc_stats) = analyse_kcfa_shared_worklist::<1>(program);
        rc_time = rc_time.min(start.elapsed());

        let start = Instant::now();
        let (direct, direct_stats) = analyse_kcfa_shared_direct::<1>(program);
        direct_time = direct_time.min(start.elapsed());
        measured = Some((rc, rc_stats, direct, direct_stats));
    }
    let (rc, rc_stats, direct, direct_stats) = measured.expect("at least one repeat");

    DirectRow {
        program: name.into(),
        configurations: direct.len(),
        rc: rc_stats,
        rc_time,
        direct: direct_stats,
        direct_time,
        equal: rc == direct,
    }
}

/// One row of the E12 comparison: the same 1CFA shared-store analysis
/// solved by the sequential direct engine and by the sharded parallel
/// driver at one thread count.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// The workload name.
    pub program: String,
    /// The worker thread count of the parallel solve.
    pub threads: usize,
    /// `(state, guts)` pairs in the fixpoint (identical for both drivers).
    pub configurations: usize,
    /// Work statistics of the sequential direct solve (the determinism
    /// oracle).
    pub direct: EngineStats,
    /// Wall-clock time of the sequential direct solve.
    pub direct_time: Duration,
    /// Work statistics of the parallel solve.  The deterministic work
    /// counters (steps, joins, rounds, widenings, intern traffic) are
    /// identical to the direct side by construction — asserted by
    /// [`parallel_row`] — and `sync_rounds`/`steal_events`/
    /// `shard_imbalance` describe the sharding itself.
    pub parallel: EngineStats,
    /// Wall-clock time of the parallel solve.
    pub parallel_time: Duration,
    /// Whether the two fixpoints were identical (they always must be).
    pub equal: bool,
}

impl ParallelRow {
    /// Wall-clock speedup of the parallel driver over the sequential
    /// direct engine (>1 means sharding won).
    pub fn speedup(&self) -> f64 {
        let parallel = self.parallel_time.as_secs_f64();
        if parallel > 0.0 {
            self.direct_time.as_secs_f64() / parallel
        } else {
            f64::NAN
        }
    }

    /// Renders the row in the fixed-width format used by the report
    /// binary.  The headline column is the wall-clock speedup; the sync/
    /// steal/imbalance counters describe how the sharding behaved.
    pub fn render(&self) -> String {
        format!(
            "{:<18} threads={:<2} states={:<6} syncs={:<4} steals={:<5} imbalance={:<5} \
             direct={:<10.2?} parallel={:<10.2?} speedup={:<5.2} equal={}",
            self.program,
            self.threads,
            self.parallel.distinct_states,
            self.parallel.sync_rounds,
            self.parallel.steal_events,
            self.parallel.shard_imbalance,
            self.direct_time,
            self.parallel_time,
            self.speedup(),
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json` (thread count
    /// recorded so rows at different counts stay distinct baselines).
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("threads", Json::Int(self.threads as u64)),
                ("configurations", Json::Int(self.configurations as u64)),
                ("direct", engine_stats_json(&self.direct)),
                ("direct_ms", Json::Num(self.direct_time.as_secs_f64() * 1e3)),
                ("parallel", engine_stats_json(&self.parallel)),
                (
                    "parallel_ms",
                    Json::Num(self.parallel_time.as_secs_f64() * 1e3),
                ),
                ("speedup", Json::Num(self.speedup())),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.direct_time + self.parallel_time)),
        )
    }
}

/// Runs the E12 comparison for one program at one thread count: 1CFA with
/// a shared store, solved by the sequential direct engine and by the
/// sharded parallel driver.  Both solves are repeated `repeats` times
/// (minimum taken), and the deterministic work counters are asserted to
/// agree between the drivers — the parallel engine must do the *same*
/// work, just spread across shards.
pub fn parallel_row(
    name: impl Into<String>,
    program: &CExp,
    threads: usize,
    repeats: usize,
) -> ParallelRow {
    let name = name.into();
    let repeats = repeats.max(1);
    let mut direct_time = Duration::MAX;
    let mut parallel_time = Duration::MAX;
    let mut measured: Option<(KCfaShared<1>, EngineStats, KCfaShared<1>, EngineStats)> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let (direct, direct_stats) = analyse_kcfa_shared_direct::<1>(program);
        direct_time = direct_time.min(start.elapsed());

        let start = Instant::now();
        let (parallel, parallel_stats) = analyse_kcfa_shared_parallel::<1>(program, threads);
        parallel_time = parallel_time.min(start.elapsed());
        measured = Some((direct, direct_stats, parallel, parallel_stats));
    }
    let (direct, direct_stats, parallel, parallel_stats) = measured.expect("at least one repeat");
    assert_eq!(
        (
            direct_stats.iterations,
            direct_stats.states_stepped,
            direct_stats.store_joins,
            direct_stats.store_joins_applied,
            direct_stats.widen_applied,
            direct_stats.spine_clones,
        ),
        (
            parallel_stats.iterations,
            parallel_stats.states_stepped,
            parallel_stats.store_joins,
            parallel_stats.store_joins_applied,
            parallel_stats.widen_applied,
            parallel_stats.spine_clones,
        ),
        "{name}: parallel driver diverged from the direct engine's work counters"
    );

    ParallelRow {
        program: name,
        threads,
        configurations: parallel.len(),
        direct: direct_stats,
        direct_time,
        parallel: parallel_stats,
        parallel_time,
        equal: direct == parallel,
    }
}

/// Runs the E9 comparison for one program: 1CFA with a shared store, solved
/// by the incremental accumulator and by the PR-1 rescanning engine.
pub fn incremental_row(name: &'static str, program: &CExp) -> IncrementalRow {
    let start = Instant::now();
    let (incremental, inc_stats) = analyse_kcfa_shared_worklist::<1>(program);
    let incremental_time = start.elapsed();

    let start = Instant::now();
    let (rescan, rescan_stats) = analyse_kcfa_shared_rescan::<1>(program);
    let rescan_time = start.elapsed();

    IncrementalRow {
        program: name,
        configurations: incremental.len(),
        incremental: inc_stats,
        incremental_time,
        rescan: rescan_stats,
        rescan_time,
        equal: incremental == rescan,
    }
}

/// One row of the E13 telemetry profile: the sharded parallel driver
/// solved once untraced and once with the [`TraceBuffer`] sink attached,
/// at the same thread count.  Tracing is pure observation — the traced
/// solve must reproduce the untraced fixpoint and the *full*
/// [`EngineStats`] bit-for-bit, which [`telemetry_row`] asserts — and the
/// trace decomposes the wall-clock into per-round step/join/sync phases
/// and per-worker busy/barrier-wait spans.
#[derive(Debug)]
pub struct TelemetryRow {
    /// The workload name.
    pub program: String,
    /// The worker thread count of both solves.
    pub threads: usize,
    /// `(state, guts)` pairs in the fixpoint.
    pub configurations: usize,
    /// Work statistics (identical for the traced and untraced solves).
    pub stats: EngineStats,
    /// Wall-clock time of the untraced solve.
    pub untraced_time: Duration,
    /// Wall-clock time of the traced solve (the difference to
    /// `untraced_time` is the observation overhead).
    pub traced_time: Duration,
    /// The recorded trace.
    pub trace: TraceBuffer,
    /// Whether the traced and untraced fixpoints were identical (they
    /// always must be).
    pub equal: bool,
}

impl TelemetryRow {
    /// Renders the row in the fixed-width format used by the report
    /// binary: the wall-clock split into the three phases, plus the
    /// steal traffic the trace attributes.
    pub fn render(&self) -> String {
        let totals = self.trace.phase_totals();
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "{:<18} threads={:<2} rounds={:<4} step={:<8.3}ms join={:<8.3}ms sync={:<8.3}ms \
             steals={:<4} untraced={:<10.2?} traced={:<10.2?} equal={}",
            self.program,
            self.threads,
            self.trace.rounds.len(),
            ms(totals.step_ns),
            ms(totals.join_ns),
            ms(totals.sync_ns),
            self.trace.steals.len(),
            self.untraced_time,
            self.traced_time,
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.  Every
    /// trace field is reported-only: `--check-regress` gates none of it.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("threads", Json::Int(self.threads as u64)),
                ("configurations", Json::Int(self.configurations as u64)),
                ("engine", engine_stats_json(&self.stats)),
                (
                    "untraced_ms",
                    Json::Num(self.untraced_time.as_secs_f64() * 1e3),
                ),
                ("traced_ms", Json::Num(self.traced_time.as_secs_f64() * 1e3)),
                ("trace", engine_trace_json(&self.trace, PROFILE_TOP_K)),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.untraced_time + self.traced_time)),
        )
    }
}

/// Runs the E13 profile for one program at one thread count: 1CFA with a
/// shared store on the sharded parallel driver, untraced and traced.
/// Panics if tracing perturbs any deterministic work counter — the
/// telemetry layer's central guarantee.
pub fn telemetry_row(name: impl Into<String>, program: &CExp, threads: usize) -> TelemetryRow {
    let name = name.into();
    let start = Instant::now();
    let (untraced, untraced_stats) = analyse_kcfa_shared_parallel::<1>(program, threads);
    let untraced_time = start.elapsed();

    let mut trace = TraceBuffer::new();
    let start = Instant::now();
    let (traced, traced_stats) =
        analyse_kcfa_shared_parallel_traced::<1, _>(program, threads, &mut trace);
    let traced_time = start.elapsed();

    // `steal_events` is a scheduling gauge, legitimately different between
    // any two runs (traced or not); every deterministic counter must agree.
    let normalise = |mut s: EngineStats| {
        s.steal_events = 0;
        // The traced solve resolves extra labels out of the interner when
        // draining worker buffers, so the stripe-contention gauge
        // legitimately differs between the two runs.
        s.stripe_acquisitions = 0;
        s
    };
    assert_eq!(
        normalise(untraced_stats),
        normalise(traced_stats),
        "{name}@t{threads}: tracing perturbed the engine's work counters"
    );
    TelemetryRow {
        program: name,
        threads,
        configurations: traced.len(),
        stats: traced_stats,
        untraced_time,
        traced_time,
        trace,
        equal: untraced == traced,
    }
}

/// One row of the E14 comparison: 1CFA with a shared store solved by the
/// sequential direct engine (the oracle), the barrier parallel driver and
/// the barrier-elastic driver at one `(threads, epochs)` point.
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// The workload name.
    pub program: String,
    /// The worker thread count of both parallel solves.
    pub threads: usize,
    /// The elastic epoch budget (`epochs = 1` is the barrier engine).
    pub epochs: usize,
    /// `(state, guts)` pairs in the fixpoint (identical for all drivers).
    pub configurations: usize,
    /// Work statistics of the sequential direct solve.
    pub direct: EngineStats,
    /// Minimum wall-clock of the direct solve.
    pub direct_time: Duration,
    /// Median wall-clock of the direct solve.
    pub direct_median: Duration,
    /// Work statistics of the barrier parallel solve.
    pub barrier: EngineStats,
    /// Minimum wall-clock of the barrier solve.
    pub barrier_time: Duration,
    /// Median wall-clock of the barrier solve.
    pub barrier_median: Duration,
    /// Work statistics of the elastic solve.  The elastic counters
    /// (`epochs_run`, `stale_merges`, memo and stripe traffic — and the
    /// step/join counts themselves) are **timing-dependent**: reported,
    /// never gated, never asserted equal to the barrier side.
    pub elastic: EngineStats,
    /// Minimum wall-clock of the elastic solve.
    pub elastic_time: Duration,
    /// Median wall-clock of the elastic solve.
    pub elastic_median: Duration,
    /// Share of worker time the barrier driver spent waiting at barriers
    /// (from a separate traced solve; observation only).
    pub barrier_wait_share: f64,
    /// Share of worker time the elastic driver spent waiting at barriers.
    pub elastic_wait_share: f64,
    /// Whether all three fixpoints were identical (they always must be).
    pub equal: bool,
}

impl ElasticRow {
    /// Wall-clock speedup of the elastic driver over the barrier driver
    /// at the same thread count (>1 means elasticity won).
    pub fn speedup_vs_barrier(&self) -> f64 {
        let elastic = self.elastic_time.as_secs_f64();
        if elastic > 0.0 {
            self.barrier_time.as_secs_f64() / elastic
        } else {
            f64::NAN
        }
    }

    /// Wall-clock speedup of the elastic driver over the sequential
    /// direct engine.
    pub fn speedup_vs_direct(&self) -> f64 {
        let elastic = self.elastic_time.as_secs_f64();
        if elastic > 0.0 {
            self.direct_time.as_secs_f64() / elastic
        } else {
            f64::NAN
        }
    }

    /// Renders the row in the fixed-width format used by the report
    /// binary.  The headline column is the elastic-vs-barrier speedup;
    /// the epoch/stale/memo counters describe how elastic the run was.
    pub fn render(&self) -> String {
        format!(
            "{:<18} threads={:<2} epochs={:<2} rounds={:<4} worker-epochs={:<5} stale={:<3} \
             memo-hit={:<5.2} wait={:<4.2}->{:<4.2} barrier={:<10.2?} elastic={:<10.2?} \
             speedup={:<5.2} equal={}",
            self.program,
            self.threads,
            self.epochs,
            self.elastic.sync_rounds,
            self.elastic.epochs_run,
            self.elastic.stale_merges,
            self.elastic.worker_cache_hit_rate(),
            self.barrier_wait_share,
            self.elastic_wait_share,
            self.barrier_time,
            self.elastic_time,
            self.speedup_vs_barrier(),
            self.equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.  Every
    /// field of this section is reported-only — the elastic counters are
    /// timing-dependent, so `--check-regress` gates none of it.
    pub fn to_json(&self) -> Json {
        let ms = |d: Duration| Json::Num(d.as_secs_f64() * 1e3);
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("threads", Json::Int(self.threads as u64)),
                ("epochs", Json::Int(self.epochs as u64)),
                ("configurations", Json::Int(self.configurations as u64)),
                ("direct", engine_stats_json(&self.direct)),
                ("direct_ms", ms(self.direct_time)),
                ("direct_median_ms", ms(self.direct_median)),
                ("barrier", engine_stats_json(&self.barrier)),
                ("barrier_ms", ms(self.barrier_time)),
                ("barrier_median_ms", ms(self.barrier_median)),
                ("barrier_wait_share", Json::Num(self.barrier_wait_share)),
                ("elastic", engine_stats_json(&self.elastic)),
                ("elastic_ms", ms(self.elastic_time)),
                ("elastic_median_ms", ms(self.elastic_median)),
                ("elastic_wait_share", Json::Num(self.elastic_wait_share)),
                ("speedup_vs_barrier", Json::Num(self.speedup_vs_barrier())),
                ("speedup_vs_direct", Json::Num(self.speedup_vs_direct())),
                (
                    "median_wall_ms",
                    ms(self.direct_median + self.barrier_median + self.elastic_median),
                ),
                ("equal", Json::Bool(self.equal)),
            ]
            .into_iter()
            .chain(timing_fields(
                self.direct_time + self.barrier_time + self.elastic_time,
            )),
        )
    }
}

/// The share of total worker time a traced parallel solve spent waiting
/// (barrier/idle) rather than stepping, from the trace's per-worker
/// busy/wait totals.
fn trace_wait_share(trace: &TraceBuffer) -> f64 {
    let (busy, wait) = trace
        .worker_totals()
        .into_iter()
        .fold((0u64, 0u64), |(b, w), (_, _, _, busy, wait)| {
            (b + busy, w + wait)
        });
    if busy + wait == 0 {
        0.0
    } else {
        wait as f64 / (busy + wait) as f64
    }
}

/// Runs the E14 comparison for one program at one `(threads, epochs)`
/// point: the sequential direct oracle, the barrier driver and the
/// barrier-elastic driver, each repeated `repeats` times (minimum and
/// median wall-clock reported).  The three fixpoints must agree
/// byte-for-byte — that is the elastic driver's whole contract — but no
/// counter parity is asserted: elastic work counts are timing-dependent.
/// The barrier-wait decomposition comes from two extra traced solves so
/// observation overhead never pollutes the timed runs.
pub fn elastic_row(
    name: impl Into<String>,
    program: &CExp,
    threads: usize,
    epochs: usize,
    repeats: usize,
) -> ElasticRow {
    let name = name.into();
    let config = ParallelConfig { threads, epochs };
    let ((direct, direct_stats), direct_time, direct_median) =
        repeat_timed(repeats, || analyse_kcfa_shared_direct::<1>(program));
    let ((barrier, barrier_stats), barrier_time, barrier_median) = repeat_timed(repeats, || {
        analyse_kcfa_shared_parallel::<1>(program, threads)
    });
    let ((elastic, elastic_stats), elastic_time, elastic_median) = repeat_timed(repeats, || {
        analyse_kcfa_shared_elastic::<1>(program, config)
    });

    let mut barrier_trace = TraceBuffer::new();
    let _ = analyse_kcfa_shared_parallel_traced::<1, _>(program, threads, &mut barrier_trace);
    let mut elastic_trace = TraceBuffer::new();
    let _ = analyse_kcfa_shared_elastic_traced::<1, _>(program, config, &mut elastic_trace);

    ElasticRow {
        program: name,
        threads,
        epochs,
        configurations: elastic.len(),
        direct: direct_stats,
        direct_time,
        direct_median,
        barrier: barrier_stats,
        barrier_time,
        barrier_median,
        elastic: elastic_stats,
        elastic_time,
        elastic_median,
        barrier_wait_share: trace_wait_share(&barrier_trace),
        elastic_wait_share: trace_wait_share(&elastic_trace),
        equal: elastic == direct && barrier == direct,
    }
}

/// The defensive bound on E15 resume chains (each resumed link performs at
/// least one round of a finite abstract solve, so the chain terminates;
/// the bound only catches a seed-dropping regression).
const MAX_RESUME_LINKS: usize = 10_000;

/// One row of the E15 comparison: the same 1CFA shared-store analysis
/// solved classically, governed with an unlimited budget (parity must be
/// byte-identical), and governed with a step budget that is resumed to
/// completion.
#[derive(Debug, Clone)]
pub struct GovernedRow {
    /// The workload name.
    pub program: String,
    /// `(state, guts)` pairs in the fixpoint.
    pub configurations: usize,
    /// Work statistics of the classic direct solve (the oracle).
    pub direct: EngineStats,
    /// Work statistics of the governed solve under `Budget::unlimited()`.
    /// Must equal `direct` field-for-field: the governed solver *is* the
    /// implementation, and unlimited governance is free.
    pub governed: EngineStats,
    /// Whether the governed-off fixpoint *and* work counters were
    /// byte-identical to the classic solve.
    pub parity: bool,
    /// The step budget of the exhaustion/resume exercise.
    pub max_steps: usize,
    /// Why the first budgeted link stopped (`None`: it completed within
    /// the budget and no resume was needed).
    pub exhaust_reason: Option<ExhaustReason>,
    /// How many `Exhausted` partials were resumed before completion.
    pub resume_links: usize,
    /// Whether the resumed fixpoint equals the one-shot fixpoint.
    pub resumed_equal: bool,
    /// Wall-clock time of the whole row (reported, never gated).
    pub wall: Duration,
}

impl GovernedRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} states={:<6} parity={:<5} max_steps={:<5} reason={:<9} resumes={:<4} \
             resumed_equal={}",
            self.program,
            self.configurations,
            self.parity,
            self.max_steps,
            self.exhaust_reason.map_or("none", ExhaustReason::as_str),
            self.resume_links,
            self.resumed_equal,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                ("configurations", Json::Int(self.configurations as u64)),
                ("direct", engine_stats_json(&self.direct)),
                ("governed", engine_stats_json(&self.governed)),
                ("parity", Json::Bool(self.parity)),
                ("max_steps", Json::Int(self.max_steps as u64)),
                (
                    "exhaust_reason",
                    Json::Str(
                        self.exhaust_reason
                            .map_or("none", ExhaustReason::as_str)
                            .to_string(),
                    ),
                ),
                ("resume_links", Json::Int(self.resume_links as u64)),
                ("resumed_equal", Json::Bool(self.resumed_equal)),
            ]
            .into_iter()
            .chain(timing_fields(self.wall)),
        )
    }
}

/// Runs the E15 exercise for one program: classic vs. governed-unlimited
/// parity, then a `max_steps`-budgeted solve resumed link by link onto the
/// one-shot fixpoint.  Everything measured here is deterministic (the
/// sequential governed engine has no timing-dependent counters), so the
/// row's `governed` counters and `resume_links` are regression-gated.
pub fn governed_row(name: impl Into<String>, program: &CExp, max_steps: usize) -> GovernedRow {
    let name = name.into();
    let start = Instant::now();
    let (direct, direct_stats) = analyse_kcfa_shared_direct::<1>(program);
    let (unlimited, governed_stats) =
        analyse_kcfa_shared_governed::<1>(program, &Budget::unlimited());
    let parity =
        unlimited.is_complete() && *unlimited.value() == direct && governed_stats == direct_stats;

    let budget = Budget::unlimited().with_max_steps(max_steps);
    let (mut outcome, _) = analyse_kcfa_shared_governed::<1>(program, &budget);
    let exhaust_reason = outcome.exhaust_reason();
    let mut resume_links = 0usize;
    while let Outcome::Exhausted { resume_seed, .. } = outcome {
        resume_links += 1;
        assert!(
            resume_links <= MAX_RESUME_LINKS,
            "{name}: resume chain failed to converge"
        );
        outcome = analyse_kcfa_shared_resume::<1>(*resume_seed, &budget).0;
    }
    let resumed_equal = outcome.into_complete() == direct;

    GovernedRow {
        program: name,
        configurations: direct.len(),
        direct: direct_stats,
        governed: governed_stats,
        parity,
        max_steps,
        exhaust_reason,
        resume_links,
        resumed_equal,
        wall: start.elapsed(),
    }
}

/// One row of the `--parallel-smoke` cancellation exercise: a governed
/// elastic solve with a token cancelled from a watchdog thread after
/// `cancel_after`.
#[derive(Debug, Clone)]
pub struct CancelLatencyRow {
    /// The workload name.
    pub program: String,
    /// Worker threads of the elastic solve.
    pub threads: usize,
    /// Epoch budget of the elastic solve.
    pub epochs: usize,
    /// How long the watchdog waited before cancelling.
    pub cancel_after: Duration,
    /// Total wall-clock until the solve returned.
    pub wall: Duration,
    /// Whether the solve returned `Exhausted(Cancelled)`.
    pub cancelled: bool,
    /// Whether the solve completed before the watchdog fired (a fast
    /// workload outrunning the timer is fine, not a failure).
    pub completed: bool,
    /// Rounds the solve ran before stopping.
    pub rounds: usize,
}

impl CancelLatencyRow {
    /// Whether the row describes a healthy governed solve: it either
    /// finished first or stopped *because* of the cancellation — anything
    /// else means the token was ignored.
    pub fn ok(&self) -> bool {
        self.completed || self.cancelled
    }

    /// The observed cancel latency: wall-clock past the watchdog's fire
    /// point (zero when the solve completed first).
    pub fn latency(&self) -> Duration {
        if self.completed {
            Duration::ZERO
        } else {
            self.wall.saturating_sub(self.cancel_after)
        }
    }

    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} threads={:<2} epochs={:<3} cancel_after={:<8.2?} wall={:<8.2?} \
             latency={:<8.2?} rounds={:<4} cancelled={} completed={}",
            self.program,
            self.threads,
            self.epochs,
            self.cancel_after,
            self.wall,
            self.latency(),
            self.rounds,
            self.cancelled,
            self.completed,
        )
    }
}

/// A program point of the E16 interval counting loop: `0` initialises the
/// counter cell, `1` is the loop head (exit or guarded increment), `2` is
/// the exit.  The loop head is the only reader of the cell, so it is the
/// only state the engines' widening-point selection can pick.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountState(pub u8);

impl mai_core::StateRoots for CountState {
    type Addr = u8;

    fn state_roots(&self) -> std::collections::BTreeSet<u8> {
        if self.0 == 1 {
            [0u8].into_iter().collect()
        } else {
            std::collections::BTreeSet::new()
        }
    }
}

/// The shared-store domain of the E16 workload: power-set of program
/// points over one interval store.
pub type WideningDomain =
    mai_core::SharedStoreDomain<CountState, u64, mai_core::store::IntervalStore<u8>>;

/// One non-deterministic branch of the E16 step: successor configuration
/// plus its result store.
pub type CountBranch = ((CountState, u64), mai_core::store::IntervalStore<u8>);

/// The E16 counting-loop step over the infinite-height interval domain:
/// `x := 0; while (cap: x < cap) { x := x + 1 }`.  Under plain join the
/// loop-head cell grows by one each round — `cap = None` is the latent
/// non-termination the governed engines' widening machinery repairs, and
/// `cap = Some(c)` is the chain-depth workload where join-only iteration
/// needs `Θ(c)` rounds while widening converges in `Θ(threshold)`.
pub fn counting_step(
    cap: Option<i64>,
) -> impl Fn(CountState, u64, mai_core::store::IntervalStore<u8>) -> Vec<CountBranch> + Sync {
    use mai_core::lattice::{Interval, Lattice, MeetLattice};
    use mai_core::store::StoreLike;
    move |ps, g, s| match ps.0 {
        0 => vec![((CountState(1), g), s.bind(0u8, Interval::singleton(0)))],
        1 => {
            let x = s.fetch(&0u8);
            let body = match cap {
                Some(c) => x.meet(Interval::at_most(c - 1)),
                None => x,
            };
            let mut branches = vec![((CountState(2), g), s.clone())];
            if !body.is_bottom() {
                let incremented = body + Interval::singleton(1);
                branches.push(((CountState(1), g), s.replace(0u8, incremented)));
            }
            branches
        }
        _ => vec![((ps, g), s)],
    }
}

/// The same loop on the `Rc`-closure carrier, desugared by
/// [`mai_core::monad::run_store_passing`] exactly as the language crates'
/// `mnext` is — the carrier-parity half of the E16 row.
fn m_counting_step(
    cap: Option<i64>,
) -> impl Fn(
    CountState,
) -> <StorePassing<u64, mai_core::store::IntervalStore<u8>> as mai_core::monad::MonadFamily>::M<
    CountState,
>{
    use mai_core::lattice::{Interval, Lattice, MeetLattice};
    use mai_core::monad::{MonadFamily, MonadPlus, MonadState, MonadTrans, StateT, VecM};
    use mai_core::store::StoreLike;
    type IS = mai_core::store::IntervalStore<u8>;
    type M = StorePassing<u64, IS>;
    move |ps| match ps.0 {
        0 => {
            let write = <M as MonadTrans>::lift(<StateT<IS, VecM> as MonadState<IS>>::modify(
                move |s: IS| s.bind(0u8, Interval::singleton(0)),
            ));
            M::bind(write, |_| M::pure(CountState(1)))
        }
        1 => {
            let fetched =
                <M as MonadTrans>::lift(<StateT<IS, VecM> as MonadState<IS>>::gets(|s: &IS| {
                    s.fetch(&0u8)
                }));
            M::bind(fetched, move |x: Interval| {
                let body = match cap {
                    Some(c) => x.meet(Interval::at_most(c - 1)),
                    None => x,
                };
                let exit = M::pure(CountState(2));
                if body.is_bottom() {
                    exit
                } else {
                    let incremented = body + Interval::singleton(1);
                    let write =
                        <M as MonadTrans>::lift(<StateT<IS, VecM> as MonadState<IS>>::modify(
                            move |s: IS| s.replace(0u8, incremented),
                        ));
                    M::mplus(exit, M::bind(write, |_| M::pure(CountState(1))))
                }
            })
        }
        _ => M::pure(ps),
    }
}

/// One row of the E16 comparison: the interval counting loop solved
/// join-only under a step budget (the unbounded variant must starve it),
/// then with engine widening points and the narrowing post-pass, on both
/// carriers plus the parallel and elastic drivers.
#[derive(Debug, Clone)]
pub struct WideningRow {
    /// The workload name.
    pub program: String,
    /// The loop guard (`None`: the counter is unbounded).
    pub cap: Option<i64>,
    /// `(state, guts)` pairs in the widened fixpoint.
    pub configurations: usize,
    /// Why the join-only budgeted solve stopped (`None`: the chain was
    /// shallow enough to complete within the budget).
    pub join_only_reason: Option<ExhaustReason>,
    /// Work statistics of the widened sequential governed solve.  Fully
    /// deterministic, so `states_stepped`, `store_joins_applied` and
    /// `widen_applied` are regression-gated.
    pub widened: EngineStats,
    /// The final loop-head counter bound (display form, e.g. `[0, +∞)`).
    pub bound: String,
    /// Addresses whose widened-then-narrowed image kept a finite bound —
    /// the precision the narrowing pass recovered (reported, not gated:
    /// more finite bounds is *better*).
    pub finite_bounds: usize,
    /// Whether the `Rc`-closure carrier produced the byte-identical
    /// outcome and work counters.
    pub carrier_parity: bool,
    /// Whether the barrier-parallel driver reproduced the fixpoint and
    /// every deterministic counter at `threads` workers.
    pub parallel_parity: bool,
    /// Whether the elastic driver reproduced the fixpoint (its widening
    /// counters are timing-dependent and deliberately unchecked).  On
    /// this single-cell workload the fixpoint itself is
    /// schedule-independent — see the derivation at the parity solve —
    /// which is what licenses asserting byte-equality for a driver whose
    /// widening points are otherwise timing-dependent.
    pub elastic_parity: bool,
    /// Worker threads of the parallel/elastic parity solves.
    pub threads: usize,
    /// Wall-clock time of the whole row (reported, never gated).
    pub wall: Duration,
}

impl WideningRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} cap={:<6} join_only={:<11} widens={:<3} bound={:<9} carrier={:<5} \
             parallel={:<5} elastic={}",
            self.program,
            self.cap.map_or("none".to_string(), |c| c.to_string()),
            self.join_only_reason
                .map_or("complete", ExhaustReason::as_str),
            self.widened.widen_applied,
            self.bound,
            self.carrier_parity,
            self.parallel_parity,
            self.elastic_parity,
        )
    }

    /// The JSON rendering of the row for `BENCH_report.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(
            [
                ("program", Json::Str(self.program.clone())),
                (
                    "cap",
                    self.cap
                        .map_or(Json::Str("none".to_string()), |c| Json::Int(c as u64)),
                ),
                ("configurations", Json::Int(self.configurations as u64)),
                (
                    "join_only_reason",
                    Json::Str(
                        self.join_only_reason
                            .map_or("complete", ExhaustReason::as_str)
                            .to_string(),
                    ),
                ),
                ("widened", engine_stats_json(&self.widened)),
                ("bound", Json::Str(self.bound.clone())),
                ("finite_bounds", Json::Int(self.finite_bounds as u64)),
                ("carrier_parity", Json::Bool(self.carrier_parity)),
                ("parallel_parity", Json::Bool(self.parallel_parity)),
                ("elastic_parity", Json::Bool(self.elastic_parity)),
                ("threads", Json::Int(self.threads as u64)),
            ]
            .into_iter()
            .chain(timing_fields(self.wall)),
        )
    }
}

/// Runs the E16 exercise for one counting-loop variant: a join-only solve
/// under `step_budget` (recording whether it starved), then the widened
/// solve (`WidenPolicy::after_growths(3)`, two narrowing passes) on the
/// direct carrier, the `Rc` carrier, the barrier-parallel driver and the
/// elastic driver.  Everything except the parity solves' wall-clock is
/// deterministic.
pub fn widening_row(
    name: impl Into<String>,
    cap: Option<i64>,
    step_budget: usize,
    threads: usize,
) -> WideningRow {
    use mai_core::engine::WidenPolicy;
    use mai_core::monad::run_store_passing;
    use mai_core::store::StoreLike;
    use mai_core::{DirectCollecting, ParallelCollecting, SolveFrom};
    type IS = mai_core::store::IntervalStore<u8>;
    let name = name.into();
    let start = Instant::now();
    let step = counting_step(cap);

    let fuel = Budget::unlimited().with_max_steps(step_budget);
    let (join_only, _) =
        <WideningDomain as DirectCollecting<CountState, u64, IS>>::explore_frontier_governed(
            &step,
            SolveFrom::Fresh(CountState(0)),
            &fuel,
        );
    let join_only_reason = join_only.exhaust_reason();

    let widened_budget = Budget::unlimited().with_widening(WidenPolicy::after_growths(3));
    let (outcome, widened_stats) =
        <WideningDomain as DirectCollecting<CountState, u64, IS>>::explore_frontier_governed(
            &step,
            SolveFrom::Fresh(CountState(0)),
            &widened_budget,
        );
    let fixpoint = outcome.into_complete();
    let bound = fixpoint.store().fetch(&0u8).to_string();
    let finite_bounds = fixpoint.store().finite_bound_count();

    let m_step = m_counting_step(cap);
    let rc_step = move |ps: CountState, g: u64, s: IS| run_store_passing(m_step(ps), g, s);
    let (rc_outcome, rc_stats) =
        <WideningDomain as DirectCollecting<CountState, u64, IS>>::explore_frontier_governed(
            &rc_step,
            SolveFrom::Fresh(CountState(0)),
            &widened_budget,
        );
    let carrier_parity =
        rc_outcome.is_complete() && *rc_outcome.value() == fixpoint && rc_stats == widened_stats;

    let parallel_parity = <WideningDomain as ParallelCollecting<CountState, u64, IS>>::
        explore_frontier_parallel_governed(
            &step,
            SolveFrom::Fresh(CountState(0)),
            threads,
            &widened_budget,
        )
        .map(|(outcome, stats)| {
            outcome.is_complete()
                && *outcome.value() == fixpoint
                && (
                    stats.states_stepped,
                    stats.store_joins_applied,
                    stats.widen_applied,
                ) == (
                    widened_stats.states_stepped,
                    widened_stats.store_joins_applied,
                    widened_stats.widen_applied,
                )
        })
        .unwrap_or(false);

    // Byte-equality is deliberate here even though elastic widening-point
    // selection is timing-dependent: on this workload it is deterministic.
    // The loop has a single interval cell whose lower bound never grows
    // (every contribution is ⊒ [0, ..] once state 0's init lands) and
    // whose upper bound grows every merge until widened, so *any*
    // merge/point schedule drives the cell to exactly [0, +∞); the state
    // set {0, 1, 2} is schedule-independent; and the narrowing pass is a
    // pure function of that final pair.  A multi-cell workload would not
    // support this assertion — elastic runs there are only guaranteed a
    // sound post-fixpoint, not the sequential engines' bytes.
    let elastic_parity = <WideningDomain as ParallelCollecting<CountState, u64, IS>>::
        explore_frontier_elastic_governed(
            &step,
            SolveFrom::Fresh(CountState(0)),
            ParallelConfig { threads, epochs: 2 },
            &widened_budget,
        )
        .map(|(outcome, _)| outcome.is_complete() && *outcome.value() == fixpoint)
        .unwrap_or(false);

    WideningRow {
        program: name,
        cap,
        configurations: fixpoint.len(),
        join_only_reason,
        widened: widened_stats,
        bound,
        finite_bounds,
        carrier_parity,
        parallel_parity,
        elastic_parity,
        threads,
        wall: start.elapsed(),
    }
}

/// Runs one governed elastic solve with a watchdog thread cancelling the
/// budget's token after `cancel_after`.  The solve must either complete
/// first or stop with `Exhausted(Cancelled)` — the row's [`CancelLatencyRow::ok`]
/// is the `--parallel-smoke` gate.
pub fn cancel_latency_row(
    name: impl Into<String>,
    program: &CExp,
    threads: usize,
    epochs: usize,
    cancel_after: Duration,
) -> CancelLatencyRow {
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(token.clone());
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(cancel_after);
        token.cancel();
    });
    let start = Instant::now();
    let (outcome, stats) = analyse_kcfa_shared_elastic_governed::<1>(
        program,
        ParallelConfig { threads, epochs },
        &budget,
    )
    .expect("no worker fault without an installed fault plan");
    let wall = start.elapsed();
    let _ = watchdog.join();
    CancelLatencyRow {
        program: name.into(),
        threads,
        epochs,
        cancel_after,
        wall,
        cancelled: outcome.exhaust_reason() == Some(ExhaustReason::Cancelled),
        completed: outcome.is_complete(),
        rounds: stats.iterations,
    }
}

/// One row of the `--parallel-smoke` fault-ladder exercise (only built
/// under the `fault-inject` feature): both parallel rungs are forced to
/// panic and the ladder must still return the sequential oracle's
/// byte-identical fixpoint.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone)]
pub struct FaultLadderRow {
    /// The workload name.
    pub program: String,
    /// Worker threads of the faulted parallel rungs.
    pub threads: usize,
    /// The rung that produced the result (stable identifier).
    pub rung: &'static str,
    /// How many rungs faulted on the way down.
    pub faults: usize,
    /// Whether the ladder's fixpoint equals the sequential oracle's.
    pub equal: bool,
    /// Wall-clock time of the whole descent.
    pub wall: Duration,
}

#[cfg(feature = "fault-inject")]
impl FaultLadderRow {
    /// Renders the row in the fixed-width format used by the report binary.
    pub fn render(&self) -> String {
        format!(
            "{:<18} threads={:<2} rung={:<17} faults={:<2} wall={:<8.2?} equal={}",
            self.program, self.threads, self.rung, self.faults, self.wall, self.equal,
        )
    }
}

/// Forces the full fault cascade — worker 0 panics on its first elastic
/// step and again on its first barrier step — and runs the degradation
/// ladder.  Worker 0's fault counter persists across rungs within the one
/// installed plan, so both parallel rungs fault deterministically and the
/// sequential rung (which never consults the plan) answers.
#[cfg(feature = "fault-inject")]
pub fn fault_ladder_row(name: impl Into<String>, program: &CExp, threads: usize) -> FaultLadderRow {
    use mai_core::engine::FaultPlan;

    let start = Instant::now();
    let (oracle, _) = analyse_kcfa_shared_direct::<1>(program);
    let guard = FaultPlan::new().panic_at(0, 0).panic_at(0, 1).install();
    // The injected panics are caught by the ladder; mute the default hook
    // while they fire so the smoke output stays one row, not backtraces.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let (outcome, _, report) = mai_cps::analysis::analyse_kcfa_shared_ladder::<1>(
        program,
        ParallelConfig { threads, epochs: 2 },
        &Budget::unlimited(),
    );
    std::panic::set_hook(default_hook);
    drop(guard);
    FaultLadderRow {
        program: name.into(),
        threads,
        rung: report.rung.as_str(),
        faults: report.faults.len(),
        equal: outcome.into_complete() == oracle,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governed_rows_hold_parity_and_resume_onto_the_fixpoint() {
        let program = mai_cps::programs::kcfa_worst_case(2);
        let row = governed_row("kcfa-worst-2", &program, 8);
        assert!(row.parity, "governed-off parity broke: {}", row.render());
        assert!(row.resumed_equal, "resume diverged: {}", row.render());
        // A budget of 8 steps genuinely bites on this workload.
        assert_eq!(row.exhaust_reason, Some(ExhaustReason::StepBudget));
        assert!(row.resume_links > 0);
        let json = row.to_json().render();
        assert!(json.contains("\"resume_links\""));
        assert!(json.contains("\"parity\""));
        // A generous budget completes in one link.
        let easy = governed_row("kcfa-worst-2", &program, usize::MAX);
        assert_eq!(easy.exhaust_reason, None);
        assert_eq!(easy.resume_links, 0);
    }

    #[test]
    fn cancel_rows_report_a_cancelled_or_completed_solve() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        // Zero delay: the token is cancelled effectively immediately, so
        // the solve is cut short (or, degenerately, wins the race).
        let row = cancel_latency_row("kcfa-worst-2w3", &program, 2, 4, Duration::ZERO);
        assert!(row.ok(), "cancel token ignored: {}", row.render());
        assert!(!row.render().is_empty());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_ladder_rows_descend_to_the_sequential_rung() {
        let program = mai_cps::programs::kcfa_worst_case(2);
        let row = fault_ladder_row("kcfa-worst-2", &program, 2);
        assert!(row.equal, "ladder fixpoint diverged: {}", row.render());
        assert_eq!(row.rung, "sequential-direct");
        assert_eq!(row.faults, 2);
    }

    #[test]
    fn elastic_rows_agree_and_record_epochs() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        for (threads, epochs) in [(1usize, 1usize), (2, 4)] {
            let row = elastic_row("kcfa-worst-2w3", &program, threads, epochs, 2);
            assert!(row.equal, "elastic/barrier/direct fixpoints differ");
            assert_eq!((row.threads, row.epochs), (threads, epochs));
            assert_eq!(row.configurations, row.elastic.distinct_states);
            if epochs > 1 {
                // The elastic machinery actually engaged: epochs ran and
                // the per-worker memo saw traffic.
                assert!(row.elastic.epochs_run >= row.elastic.sync_rounds);
                assert!(row.elastic.worker_cache_hits + row.elastic.worker_cache_misses > 0);
            } else {
                assert_eq!(row.elastic.epochs_run, 0, "epochs=1 delegates to barrier");
            }
            let json = row.to_json().render();
            assert!(json.contains("\"epochs\""));
            assert!(json.contains("\"median_wall_ms\""));
            assert!(json.contains("\"worker_cache_hit_rate\""));
            assert!(json.contains("\"speedup_vs_barrier\""));
            assert!(!row.render().is_empty());
        }
    }

    #[test]
    fn repeat_timed_reports_min_and_median() {
        let mut calls = 0usize;
        let (value, min, median) = repeat_timed(5, || {
            calls += 1;
            calls
        });
        assert_eq!(value, 5);
        assert_eq!(calls, 5);
        assert!(min <= median);
    }

    #[test]
    fn rows_render_and_cover_the_corpus() {
        for (name, program) in cps_corpus() {
            let rows = polyvariance_rows(name, &program);
            assert_eq!(rows.len(), 3);
            for row in &rows {
                assert!(!row.render().is_empty());
            }
        }
    }

    #[test]
    fn cloning_explores_at_least_as_many_configurations_as_sharing() {
        let program = mai_cps::programs::id_chain(4);
        let (cloned, shared) = cloning_vs_shared(&program);
        assert!(cloned >= 1);
        assert!(shared >= 1);
    }

    #[test]
    fn gc_rows_report_no_more_facts_than_plain_rows() {
        let program = mai_cps::programs::garbage_chain(4);
        let rows = gc_rows("garbage-chain-4", &program);
        assert!(rows[1].metrics.store_facts <= rows[0].metrics.store_facts);
    }

    #[test]
    fn incremental_rows_agree_and_join_less() {
        let program = mai_cps::programs::kcfa_worst_case(2);
        let row = incremental_row("kcfa-worst-2", &program);
        assert!(row.equal, "incremental and rescan fixpoints differ");
        // The whole point of E9: the incremental engine folds O(|frontier|)
        // contributions per round where the rescanning engine re-joins
        // O(|states|).
        assert!(
            row.incremental.store_joins < row.rescan.store_joins,
            "expected fewer incremental joins: {}",
            row.render()
        );
        assert!(row.incremental.joins_per_round() < row.rescan.joins_per_round());
        let json = row.to_json().render();
        assert!(json.contains("\"joins_per_round\""));
    }

    #[test]
    fn interned_rows_agree_and_report_interning() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        let row = interned_row("kcfa-worst-2w3", &program, 2);
        assert!(row.equal, "interned and structural fixpoints differ");
        // Same frontier strategy, tighter read sets: the id-indexed engine
        // never steps or folds more than the structural engine.
        assert!(
            row.interned.states_stepped <= row.structural.states_stepped,
            "{}",
            row.render()
        );
        assert!(row.interned.store_joins <= row.structural.store_joins);
        // The id-indexed engine actually interned: every configuration got
        // an id, and repeat sightings were hits.
        assert_eq!(row.interned.distinct_states, row.configurations);
        assert!(row.interned.intern_hits > 0);
        assert!(row.interned.distinct_envs > 0);
        assert!(row.interned.distinct_envs <= row.configurations);
        // The structural baseline does not intern.
        assert_eq!(row.structural.intern_misses, 0);
        let json = row.to_json().render();
        assert!(json.contains("\"intern_hit_rate\""));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn direct_rows_agree_and_do_identical_work() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        let row = direct_row("kcfa-worst-2w3", &program, 2);
        assert!(row.equal, "direct and Rc-carrier fixpoints differ");
        // The solver is shared between the carriers, so every work counter
        // must agree bit-for-bit; only wall-clock may differ.
        assert_eq!(row.rc.states_stepped, row.direct.states_stepped);
        assert_eq!(row.rc.store_joins, row.direct.store_joins);
        assert_eq!(row.rc.spine_clones, row.direct.spine_clones);
        assert_eq!(row.rc.store_joins_applied, row.direct.store_joins_applied);
        assert_eq!(row.rc.widen_applied, row.direct.widen_applied);
        // The persistent spine actually shares structure with the caches.
        assert!(row.direct.spine_clones > 0);
        assert!(row.direct.store_bytes_shared > 0);
        let json = row.to_json().render();
        assert!(json.contains("\"spine_clones\""));
        assert!(json.contains("\"store_bytes_shared\""));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn parallel_rows_agree_and_record_threads() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        for threads in [1usize, 2] {
            let row = parallel_row("kcfa-worst-2w3", &program, threads, 2);
            assert!(row.equal, "parallel and direct fixpoints differ");
            assert_eq!(row.threads, threads);
            // Deterministic work counters must match the direct oracle
            // (parallel_row itself asserts the core set; spot-check more).
            assert_eq!(row.parallel.cache_hits, row.direct.cache_hits);
            assert_eq!(row.parallel.reenqueued, row.direct.reenqueued);
            assert_eq!(row.parallel.intern_misses, row.direct.intern_misses);
            // The parallel driver syncs once per round; the sequential
            // engine never syncs.
            assert_eq!(row.parallel.sync_rounds, row.parallel.iterations);
            assert_eq!(row.direct.sync_rounds, 0);
            let json = row.to_json().render();
            assert!(json.contains("\"threads\""));
            assert!(json.contains("\"sync_rounds\""));
            assert!(json.contains("\"steal_events\""));
            assert!(json.contains("\"speedup\""));
        }
    }

    #[test]
    fn every_row_kind_reports_wall_ms_and_host_cpus() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        let jsons = vec![
            polyvariance_rows("kcfa-worst-2w3", &program)[0].to_json(),
            worklist_row("kcfa-worst-2w3", &program).to_json(),
            incremental_row("kcfa-worst-2w3", &program).to_json(),
            interned_row("kcfa-worst-2w3", &program, 1).to_json(),
            direct_row("kcfa-worst-2w3", &program, 1).to_json(),
            parallel_row("kcfa-worst-2w3", &program, 2, 1).to_json(),
            telemetry_row("kcfa-worst-2w3", &program, 2).to_json(),
        ];
        for json in jsons {
            assert!(
                json.get("wall_ms").and_then(Json::as_f64).is_some(),
                "row misses wall_ms: {}",
                json.render()
            );
            assert_eq!(
                json.get("host_cpus").and_then(Json::as_u64),
                Some(host_cpus() as u64),
                "row misses host_cpus: {}",
                json.render()
            );
        }
    }

    #[test]
    fn telemetry_rows_trace_without_perturbing_the_solve() {
        let program = mai_cps::programs::kcfa_worst_case_scaled(2, 3);
        // telemetry_row itself asserts EngineStats equality between the
        // traced and untraced solves; `equal` covers the fixpoint.
        let row = telemetry_row("kcfa-worst-2w3", &program, 2);
        assert!(row.equal, "traced fixpoint differs from untraced");
        assert_eq!(row.trace.rounds.len(), row.stats.iterations);
        // Every round stepped something and the worker spans cover every
        // round (two workers joined per sync round).
        assert!(row.trace.rounds.iter().all(|r| r.stepped > 0));
        assert!(!row.trace.workers.is_empty());
        let processed: usize = row.trace.workers.iter().map(|s| s.processed).sum();
        assert_eq!(processed, row.stats.states_stepped);
        // The trace attributes step cost and join traffic to real labels.
        assert!(!row.trace.top_states(4).is_empty());
        assert!(!row.trace.top_addresses(4).is_empty());
        let json = row.to_json().render();
        assert!(json.contains("\"phase_totals\""));
        assert!(json.contains("\"hot_states\""));
        // The Chrome export parses and carries all three phase categories.
        let chrome = Json::parse(&row.trace.chrome_trace_json()).expect("chrome trace parses");
        let events = chrome.get("traceEvents").expect("traceEvents").items();
        for cat in ["step", "join", "worker"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("cat").and_then(Json::as_str) == Some(cat)),
                "no {cat} slice in the Chrome export"
            );
        }
    }

    #[test]
    fn worklist_rows_agree_and_step_less() {
        let program = mai_cps::programs::kcfa_worst_case(2);
        let row = worklist_row("kcfa-worst-2", &program);
        assert!(row.equal, "worklist and Kleene fixpoints differ");
        assert!(
            row.stats.states_stepped < row.kleene_steps,
            "expected fewer worklist steps: {}",
            row.render()
        );
        assert!(!row.render().is_empty());
    }
}
