//! Cross-language adequacy: Church arithmetic evaluated by the direct-style
//! CESK interpreter, by the CPS interpreter after CPS conversion, and
//! approximated by the abstract interpreters of both substrates.
//!
//! Run with `cargo run --example church_adequacy`.

use monadic_ai::cps::convert::cps_convert;
use monadic_ai::cps::{analyse_mono as cps_mono, interpret_with_limit};
use monadic_ai::lambda::programs::{church_exponentiation, church_multiplication};
use monadic_ai::lambda::{analyse_mono as cesk_mono, decode_church_numeral, evaluate};

fn main() {
    for (label, term, expected) in [
        ("2 × 3", church_multiplication(2, 3), 6),
        ("2 ^ 3", church_exponentiation(2, 3), 8),
        ("3 ^ 2", church_exponentiation(3, 2), 9),
    ] {
        println!("== church {label} ==");

        // Direct-style: concrete CESK evaluation + decoding.
        let decoded = decode_church_numeral(&term);
        println!("CESK decodes the numeral to {decoded} (expected {expected})");
        assert_eq!(decoded, expected);
        let cesk_run = evaluate(&term);
        println!("CESK halts: {}", cesk_run.halted());

        // CPS: convert, interpret concretely, and analyse abstractly.
        let program = cps_convert(&term);
        let cps_run = interpret_with_limit(&program, 1_000_000);
        println!(
            "CPS-converted program has {} call sites; concrete CPS run halts: {}",
            program.call_site_count(),
            cps_run.halted()
        );

        // The abstract interpreters terminate on both representations and
        // keep the halt state reachable — the soundness sanity check.
        let cesk_abs = cesk_mono(&term);
        let cps_abs = cps_mono(&program);
        println!(
            "abstract state counts: CESK 0CFA = {}, CPS 0CFA = {}",
            cesk_abs.len(),
            cps_abs.len()
        );
        println!();
    }
}
