//! Quickstart: parse a CPS program, run the concrete interpreter, then run
//! a spectrum of abstract interpreters obtained by swapping the monadic
//! parameters — without touching the semantics.
//!
//! Run with `cargo run --example quickstart`.

use monadic_ai::core::Name;
use monadic_ai::cps::{
    analyse_kcfa_shared, analyse_kcfa_shared_gc, analyse_mono, flow_map_of_store, interpret,
    parse_program, AnalysisMetrics,
};

fn main() {
    // The identity function applied to the identity function, in CPS.
    let source = "((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))";
    let program = parse_program(source).expect("the quickstart program parses");
    println!("program: {program}");

    // 1. The concrete interpreter (paper §4): same `mnext`, deterministic
    //    state monad over a real heap.
    let run = interpret(&program);
    println!(
        "concrete run halted: {} (allocated {} heap cells)",
        run.halted(),
        run.heap().allocation_count()
    );

    // 2. The monovariant analysis (0CFA): the \"context-insensitivity
    //    monad\" plugged into the same semantics.
    let mono = analyse_mono(&program);
    let flows = flow_map_of_store(mono.store());
    println!("0CFA flow set of x: {:?}", flows[&Name::from("x")]);

    // 3. 1-CFA with a shared (widened) store, with and without abstract
    //    garbage collection.
    let one = analyse_kcfa_shared::<1>(&program);
    let one_gc = analyse_kcfa_shared_gc::<1>(&program);
    println!("1CFA        : {:?}", AnalysisMetrics::of_shared(&one));
    println!("1CFA + GC   : {:?}", AnalysisMetrics::of_shared(&one_gc));
}
