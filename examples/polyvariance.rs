//! Polyvariance as a monadic parameter (paper §6.1, §8.1–§8.2).
//!
//! The same CPS semantics is analysed under the monovariant allocator and
//! under k-CFA call-string contexts for several k, measuring how the flow
//! sets and store sizes change.  The program is the classic "fan-out"
//! polyvariance stress test: one identity function called from n sites with
//! n different arguments.
//!
//! Run with `cargo run --example polyvariance`.

use monadic_ai::core::Name;
use monadic_ai::cps::programs::fan_out;
use monadic_ai::cps::{analyse_kcfa_shared, analyse_mono, flow_map_of_store, AnalysisMetrics};

fn main() {
    let program = fan_out(6);
    println!("analysing: {program}\n");

    let mono = analyse_mono(&program);
    let mono_flows = flow_map_of_store(mono.store());
    println!(
        "0CFA  : x may be {} different lambdas | metrics {:?}",
        mono_flows[&Name::from("x")].len(),
        AnalysisMetrics::of_shared(&mono)
    );

    let one = analyse_kcfa_shared::<1>(&program);
    let one_flows = flow_map_of_store(one.store());
    println!(
        "1CFA  : x may be {} different lambdas | metrics {:?}",
        one_flows[&Name::from("x")].len(),
        AnalysisMetrics::of_shared(&one)
    );

    let two = analyse_kcfa_shared::<2>(&program);
    println!("2CFA  : metrics {:?}", AnalysisMetrics::of_shared(&two));

    // Under 0CFA all six argument lambdas pile into the single abstract
    // binding of x; under 1CFA each call site gets its own binding, so the
    // *per-address* flow sets become singletons even though the union over
    // all contexts is unchanged.
    let singleton_bindings = |metrics: &AnalysisMetrics| {
        format!(
            "{} of {} addresses are singletons",
            metrics.singleton_flows, metrics.store_bindings
        )
    };
    println!();
    println!(
        "0CFA  : {}",
        singleton_bindings(&AnalysisMetrics::of_shared(&mono))
    );
    println!(
        "1CFA  : {}",
        singleton_bindings(&AnalysisMetrics::of_shared(&one))
    );
}
