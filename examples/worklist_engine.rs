//! The frontier-driven worklist engine from the outside: same fixpoints as
//! Kleene iteration, a fraction of the work, plus `EngineStats` telemetry.
//!
//! Run with `cargo run --example worklist_engine`.

use monadic_ai::cps::programs::{kcfa_worst_case, omega};
use monadic_ai::cps::{
    analyse_kcfa_shared, analyse_kcfa_shared_rescan, analyse_kcfa_shared_worklist,
    analyse_mono_worklist, parse_program,
};

fn main() {
    // A handwritten program through the parser, solved by the worklist
    // engine's monovariant analysis.
    let program = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
    let (mono, stats) = analyse_mono_worklist(&program);
    println!(
        "identity: {} states reached, engine [{stats}]",
        mono.distinct_states().len()
    );

    // The divergent Ω term: the abstract engine still terminates.
    let (o, stats) = analyse_mono_worklist(&omega());
    println!(
        "omega:    {} states reached, engine [{stats}]",
        o.distinct_states().len()
    );

    // The k-CFA worst case: identical fixpoint, far fewer steps than the
    // Kleene oracle re-steps — and far fewer contribution joins than the
    // PR-1 rescanning engine re-joins (the `joins=` counter: the
    // incremental accumulator folds O(|frontier|) contributions per round,
    // the rescanning engine O(|states|)).
    let program = kcfa_worst_case(3);
    let kleene = analyse_kcfa_shared::<1>(&program);
    let (worklist, stats) = analyse_kcfa_shared_worklist::<1>(&program);
    let (rescan, rescan_stats) = analyse_kcfa_shared_rescan::<1>(&program);
    println!(
        "kcfa-worst-3 (1CFA): incremental == kleene: {}, rescan == kleene: {}",
        worklist == kleene,
        rescan == kleene
    );
    println!("  incremental [{stats}]");
    println!("  rescan      [{rescan_stats}]");
}
