//! The same monadic parameters, now analysing Featherweight Java
//! (paper §1: "plugging the same context-insensitivity monad into a
//! monadically-parameterized semantics for Java or for the lambda calculus
//! yields the expected context-insensitive analysis").
//!
//! Run with `cargo run --example java_class_analysis`.

use monadic_ai::fj::programs::{pair_fst, shape_dispatch, two_cells};
use monadic_ai::fj::{analyse_kcfa_shared, analyse_mono, class_flow_map, result_classes, run};

fn main() {
    for (name, program) in [
        ("pair-fst", pair_fst()),
        ("two-cells", two_cells()),
        ("shape-dispatch", shape_dispatch()),
    ] {
        println!("== {name} ==");
        println!("main: {}", program.main);

        // Ground truth from the concrete interpreter.
        let concrete = run(&program);
        println!("concrete result class : {:?}", concrete.result_class());

        // Context-insensitive class analysis.
        let mono = analyse_mono(&program);
        println!("0CFA result classes   : {:?}", result_classes(&mono));

        // 1-call-site-sensitive class analysis.
        let one = analyse_kcfa_shared::<1>(&program);
        println!("1CFA result classes   : {:?}", result_classes(&one));

        // Field/variable class flows under the monovariant analysis.
        let flows = class_flow_map(mono.store());
        let interesting: Vec<String> = flows
            .iter()
            .filter(|(var, _)| !var.as_str().starts_with("$kont"))
            .map(|(var, classes)| format!("{var} ↦ {classes:?}"))
            .collect();
        println!("0CFA class flows      : {}", interesting.join(", "));
        println!();
    }
}
